#include <gtest/gtest.h>

#include "sim/gmem.hpp"

namespace gs
{
namespace
{

TEST(GlobalMemory, ZeroInitialised)
{
    GlobalMemory m;
    EXPECT_EQ(m.readWord(0), 0u);
    EXPECT_EQ(m.readWord(0x123450), 0u);
    EXPECT_EQ(m.pageCount(), 0u); // reads allocate nothing
}

TEST(GlobalMemory, ReadBack)
{
    GlobalMemory m;
    m.writeWord(0x100, 0xdeadbeef);
    EXPECT_EQ(m.readWord(0x100), 0xdeadbeefu);
    EXPECT_EQ(m.readWord(0x104), 0u);
}

TEST(GlobalMemory, PageBoundary)
{
    GlobalMemory m;
    m.writeWord(4092, 0x11);
    m.writeWord(4096, 0x22);
    EXPECT_EQ(m.readWord(4092), 0x11u);
    EXPECT_EQ(m.readWord(4096), 0x22u);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(GlobalMemory, SparsePages)
{
    GlobalMemory m;
    m.writeWord(0, 1);
    m.writeWord(1ull << 30, 2);
    EXPECT_EQ(m.pageCount(), 2u);
    EXPECT_EQ(m.readWord(1ull << 30), 2u);
}

TEST(GlobalMemory, FillAndReadWords)
{
    GlobalMemory m;
    m.fillWords(0x2000, {1, 2, 3, 4});
    const auto v = m.readWords(0x2000, 4);
    EXPECT_EQ(v, (std::vector<Word>{1, 2, 3, 4}));
}

TEST(GlobalMemoryDeath, UnalignedAccessPanics)
{
    GlobalMemory m;
    EXPECT_DEATH(m.writeWord(3, 1), "unaligned");
    EXPECT_DEATH(m.readWord(5), "unaligned");
}

} // namespace
} // namespace gs
