/**
 * @file
 * Fault-injector unit tests (fault/fault.hpp): spec parsing, the
 * seeded-determinism contract (same seed -> same firing sequence),
 * rate edge cases, the Suppress guard, fired counters, and the
 * reliability-counter registry completeness check in the
 * eventMetrics() idiom.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"

using namespace gs;

namespace
{

/** The firing decisions of @p inj for n consultations of one hook. */
std::vector<bool>
decisions(FaultInjector &inj, int n,
          const char *site = "engine",
          FaultKind kind = FaultKind::Throw)
{
    std::vector<bool> out;
    for (int i = 0; i < n; ++i)
        out.push_back(inj.shouldInject(site, kind));
    return out;
}

} // namespace

TEST(FaultSpecParse, KindNamesRoundTrip)
{
    for (const FaultKind k :
         {FaultKind::ShortWrite, FaultKind::RenameFail, FaultKind::BitFlip,
          FaultKind::ConnReset, FaultKind::ShortRead, FaultKind::Eintr,
          FaultKind::Stall, FaultKind::Throw, FaultKind::Slow,
          FaultKind::JournalTornWrite, FaultKind::JournalBitFlip,
          FaultKind::PointCrash, FaultKind::DaemonLost}) {
        const std::optional<FaultKind> back =
            parseFaultKind(faultKindName(k));
        ASSERT_TRUE(back.has_value()) << faultKindName(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(parseFaultKind("segfault").has_value());
    EXPECT_FALSE(parseFaultKind("").has_value());
}

TEST(FaultSpecParse, SweepSiteIsAccepted)
{
    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(
        inj.configure("sweep:journal-torn-write:1,sweep:point-crash:1",
                      &err))
        << err;
    EXPECT_TRUE(inj.shouldInject("sweep", FaultKind::JournalTornWrite));
    EXPECT_TRUE(inj.shouldInject("sweep", FaultKind::PointCrash));
    EXPECT_FALSE(inj.shouldInject("sweep", FaultKind::DaemonLost));
    EXPECT_FALSE(inj.shouldInject("store", FaultKind::PointCrash));
    EXPECT_GE(inj.injectedAt("sweep"), 2u);

    // Unknown sites still fail with the site list, now naming sweep.
    err.clear();
    EXPECT_FALSE(inj.configure("gpu:point-crash:1", &err));
    EXPECT_NE(err.find("sweep"), std::string::npos);
}

TEST(FaultSpecParse, ValidSpecsArm)
{
    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.configure("engine:throw:0.25:42", &err)) << err;
    ASSERT_TRUE(inj.armed());
    const std::vector<FaultSpec> specs = inj.specs();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].site, "engine");
    EXPECT_EQ(specs[0].kind, FaultKind::Throw);
    EXPECT_DOUBLE_EQ(specs[0].rate, 0.25);
    EXPECT_EQ(specs[0].seed, 42u);

    // Multiple comma-separated specs; seed defaults to 0.
    ASSERT_TRUE(inj.configure(
        "store:bit-flip:0.05,serve:conn-reset:1.0:7", &err))
        << err;
    ASSERT_EQ(inj.specs().size(), 2u);
    EXPECT_EQ(inj.specs()[0].seed, 0u);
    EXPECT_EQ(inj.specs()[1].rate, 1.0);
}

TEST(FaultSpecParse, MalformedSpecsKeepPreviousConfig)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("engine:throw:0.5"));

    std::string err;
    const char *bad[] = {
        "engine:throw",           // missing rate
        "engine:throw:0.5:1:2",   // too many fields
        "gpu:throw:0.5",          // unknown site
        "engine:segfault:0.5",    // unknown kind
        "engine:throw:1.5",       // rate above 1
        "engine:throw:-0.1",      // negative rate
        "engine:throw:abc",       // non-numeric rate
        "engine:throw:0.5:-3",    // negative seed
        "engine:throw:0.5:xyz",   // non-numeric seed
    };
    for (const char *spec : bad) {
        err.clear();
        EXPECT_FALSE(inj.configure(spec, &err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
        // The previous good configuration survives a rejected one.
        ASSERT_EQ(inj.specs().size(), 1u) << spec;
        EXPECT_EQ(inj.specs()[0].site, "engine");
    }
}

TEST(FaultSpecParse, EmptyStringDisarms)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("engine:throw:0.5"));
    ASSERT_TRUE(inj.armed());
    ASSERT_TRUE(inj.configure(""));
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.shouldInject("engine", FaultKind::Throw));

    ASSERT_TRUE(inj.configure("engine:throw:0.5"));
    inj.disarm();
    EXPECT_FALSE(inj.armed());
}

TEST(FaultInjector, SameSeedSameSequence)
{
    FaultInjector a, b;
    ASSERT_TRUE(a.configure("engine:throw:0.3:1234"));
    ASSERT_TRUE(b.configure("engine:throw:0.3:1234"));
    const std::vector<bool> da = decisions(a, 500);
    const std::vector<bool> db = decisions(b, 500);
    EXPECT_EQ(da, db);
    // Roughly rate * n firings; generous bounds, deterministic anyway.
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 100u);
    EXPECT_LT(a.injected(), 200u);

    // Reconfiguring resets the occurrence counter: the sequence replays.
    ASSERT_TRUE(a.configure("engine:throw:0.3:1234"));
    EXPECT_EQ(decisions(a, 500), db);
}

TEST(FaultInjector, DifferentSeedDifferentSequence)
{
    FaultInjector a, b;
    ASSERT_TRUE(a.configure("engine:throw:0.5:1"));
    ASSERT_TRUE(b.configure("engine:throw:0.5:2"));
    EXPECT_NE(decisions(a, 256), decisions(b, 256));
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("serve:eintr:0"));
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(inj.shouldInject("serve", FaultKind::Eintr));
    EXPECT_EQ(inj.injected(), 0u);

    ASSERT_TRUE(inj.configure("serve:eintr:1"));
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(inj.shouldInject("serve", FaultKind::Eintr));
    EXPECT_EQ(inj.injected(), 200u);
    EXPECT_EQ(inj.injectedAt("serve"), 200u);
    EXPECT_EQ(inj.injectedAt("store"), 0u);
}

TEST(FaultInjector, OnlyMatchingSiteAndKindFire)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("store:bit-flip:1"));
    EXPECT_FALSE(inj.shouldInject("serve", FaultKind::BitFlip));
    EXPECT_FALSE(inj.shouldInject("store", FaultKind::ShortWrite));
    EXPECT_TRUE(inj.shouldInject("store", FaultKind::BitFlip));
}

TEST(FaultInjector, SuppressGuardBlocksInjection)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("engine:throw:1"));
    EXPECT_FALSE(FaultInjector::suppressed());
    {
        FaultInjector::Suppress guard;
        EXPECT_TRUE(FaultInjector::suppressed());
        EXPECT_FALSE(inj.shouldInject("engine", FaultKind::Throw));
        {
            FaultInjector::Suppress nested;
            EXPECT_TRUE(FaultInjector::suppressed());
        }
        EXPECT_TRUE(FaultInjector::suppressed());
    }
    EXPECT_FALSE(FaultInjector::suppressed());
    EXPECT_TRUE(inj.shouldInject("engine", FaultKind::Throw));
}

TEST(FaultInjector, FiringBumpsGlobalHealthCounter)
{
    healthCounters().reset();
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("engine:slow:1"));
    ASSERT_TRUE(inj.shouldInject("engine", FaultKind::Slow));
    EXPECT_EQ(healthCounters().snapshot().faultsInjected, 1u);
    healthCounters().reset();
}

TEST(HealthCounters, SnapshotAndResetRoundTrip)
{
    healthCounters().reset();
    healthCounters().runRetries += 2;
    healthCounters().cacheQuarantines += 1;
    const HealthCounts s = healthCounters().snapshot();
    EXPECT_EQ(s.runRetries, 2u);
    EXPECT_EQ(s.cacheQuarantines, 1u);
    EXPECT_EQ(s.clientRetries, 0u);

    const std::string summary = healthSummary();
    EXPECT_NE(summary.find("run_retries 2"), std::string::npos);
    EXPECT_NE(summary.find("cache_quarantines 1"), std::string::npos);
    EXPECT_EQ(summary.find("client_retries"), std::string::npos);

    healthCounters().reset();
    EXPECT_EQ(healthCounters().snapshot().runRetries, 0u);
    EXPECT_TRUE(healthSummary().empty());
}

TEST(ClientRetryDeadline, DeadlineCapsTheRetryLadder)
{
    healthCounters().reset();
    // No daemon listens here. Without the deadline, 50 attempts with a
    // 50ms floor would sleep for seconds; the deadline fails the
    // operation fast with an explicit reason instead.
    ClientOptions o;
    o.connectTimeoutSec = 0.2;
    o.attempts = 50;
    o.backoffBaseSec = 0.05;
    o.backoffMaxSec = 0.05;
    o.retryDeadlineSec = 0.2;
    GscalarClient client("/tmp/gs-no-such-daemon-deadline.sock", o);
    std::string err;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(client.ping(&err));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_NE(err.find("retry deadline exceeded"), std::string::npos)
        << err;
    // Generous bound: the ladder stopped near the 0.2s deadline, not
    // after 49 backoffs (~2.5s+).
    EXPECT_LT(elapsed, 2.0);
    healthCounters().reset();
}

TEST(ClientRetryDeadline, FromEnvParsesGsRetryDeadlineMs)
{
    ::setenv("GS_RETRY_DEADLINE_MS", "1500", 1);
    EXPECT_DOUBLE_EQ(ClientOptions::fromEnv().retryDeadlineSec, 1.5);
    ::setenv("GS_RETRY_DEADLINE_MS", "0", 1);
    EXPECT_DOUBLE_EQ(ClientOptions::fromEnv().retryDeadlineSec, 0.0);
    // Malformed values warn and keep the uncapped default.
    for (const char *bad : {"nope", "-100", "12ms"}) {
        ::setenv("GS_RETRY_DEADLINE_MS", bad, 1);
        EXPECT_DOUBLE_EQ(ClientOptions::fromEnv().retryDeadlineSec, 0.0)
            << bad;
    }
    ::unsetenv("GS_RETRY_DEADLINE_MS");
    EXPECT_DOUBLE_EQ(ClientOptions::fromEnv().retryDeadlineSec, 0.0);
}

TEST(HealthMetrics, RegistryCoversEveryCounter)
{
    // The static_assert in health.hpp pins the field count; here we pin
    // name uniqueness and that each member pointer addresses a distinct
    // field (same contract the EventCounts registry test enforces).
    const auto &regs = healthMetrics();
    EXPECT_EQ(regs.size(), kHealthCountFields);

    std::set<std::string> names;
    std::set<const char *> units;
    HealthCounts probe;
    std::uint64_t tag = 1;
    for (const auto &m : regs) {
        ASSERT_NE(m.name, nullptr);
        ASSERT_NE(m.field, nullptr);
        EXPECT_TRUE(names.insert(m.name).second)
            << "duplicate metric name " << m.name;
        EXPECT_STREQ(m.unit, "events");
        probe.*(m.field) = tag++;
    }
    // Every field got a distinct tag through its registry pointer, so
    // the pointers address kHealthCountFields distinct fields.
    std::set<std::uint64_t> tags;
    for (const auto &m : regs)
        tags.insert(m.value(probe));
    EXPECT_EQ(tags.size(), kHealthCountFields);
}
