/**
 * @file
 * Disassembly coverage: every opcode of the mini ISA renders stable,
 * expected text, both for directly constructed instructions (pinning
 * each operand-format family, including hardware-inserted SMOV) and for
 * a KernelBuilder-authored kernel round-tripped through
 * Kernel::disassemble(). These strings are part of the debugging
 * surface (gscalar disasm / trace); changes here should be deliberate.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "isa/instruction.hpp"
#include "isa/kernel_builder.hpp"

using namespace gs;

namespace
{

Instruction
alu2(Opcode op)
{
    Instruction i;
    i.op = op;
    i.dst = 1;
    i.src = {2, 3, kNoReg};
    return i;
}

Instruction
alu1(Opcode op)
{
    Instruction i;
    i.op = op;
    i.dst = 1;
    i.src = {2, kNoReg, kNoReg};
    return i;
}

Instruction
alu3(Opcode op)
{
    Instruction i;
    i.op = op;
    i.dst = 1;
    i.src = {2, 3, 4};
    return i;
}

} // namespace

TEST(Disasm, EveryOpcodeHasStableText)
{
    std::map<Opcode, std::pair<Instruction, std::string>> cases;
    auto add = [&](Instruction i, const std::string &text) {
        cases[i.op] = {i, text};
    };

    // Two-source ALU ops.
    add(alu2(Opcode::IADD), "iadd r1, r2, r3");
    add(alu2(Opcode::ISUB), "isub r1, r2, r3");
    add(alu2(Opcode::IMUL), "imul r1, r2, r3");
    add(alu2(Opcode::IDIV), "idiv r1, r2, r3");
    add(alu2(Opcode::IREM), "irem r1, r2, r3");
    add(alu2(Opcode::IMIN), "imin r1, r2, r3");
    add(alu2(Opcode::IMAX), "imax r1, r2, r3");
    add(alu2(Opcode::AND), "and r1, r2, r3");
    add(alu2(Opcode::OR), "or r1, r2, r3");
    add(alu2(Opcode::XOR), "xor r1, r2, r3");
    add(alu2(Opcode::SHL), "shl r1, r2, r3");
    add(alu2(Opcode::SHR), "shr r1, r2, r3");
    add(alu2(Opcode::FADD), "fadd r1, r2, r3");
    add(alu2(Opcode::FSUB), "fsub r1, r2, r3");
    add(alu2(Opcode::FMUL), "fmul r1, r2, r3");
    add(alu2(Opcode::FMIN), "fmin r1, r2, r3");
    add(alu2(Opcode::FMAX), "fmax r1, r2, r3");

    // One-source ALU / conversion / SFU ops.
    add(alu1(Opcode::IABS), "iabs r1, r2");
    add(alu1(Opcode::NOT), "not r1, r2");
    add(alu1(Opcode::FABS), "fabs r1, r2");
    add(alu1(Opcode::FNEG), "fneg r1, r2");
    add(alu1(Opcode::MOV), "mov r1, r2");
    add(alu1(Opcode::I2F), "i2f r1, r2");
    add(alu1(Opcode::F2I), "f2i r1, r2");
    add(alu1(Opcode::SIN), "sin r1, r2");
    add(alu1(Opcode::COS), "cos r1, r2");
    add(alu1(Opcode::EX2), "ex2 r1, r2");
    add(alu1(Opcode::LG2), "lg2 r1, r2");
    add(alu1(Opcode::RCP), "rcp r1, r2");
    add(alu1(Opcode::RSQ), "rsq r1, r2");
    add(alu1(Opcode::SQRT), "sqrt r1, r2");

    // Three-source ops.
    add(alu3(Opcode::IMAD), "imad r1, r2, r3, r4");
    add(alu3(Opcode::FFMA), "ffma r1, r2, r3, r4");

    // SEL: dst, condition predicate, then/else sources.
    {
        Instruction i = alu2(Opcode::SEL);
        i.psrc = 0;
        add(i, "sel r1, p0, r2, r3");
    }

    // Compares.
    {
        Instruction i;
        i.op = Opcode::ISETP;
        i.pdst = 1;
        i.src = {2, 3, kNoReg};
        i.cmp = CmpOp::LT;
        add(i, "isetp.lt p1, r2, r3");
    }
    {
        Instruction i;
        i.op = Opcode::FSETP;
        i.pdst = 0;
        i.src = {4, 5, kNoReg};
        i.cmp = CmpOp::GE;
        add(i, "fsetp.ge p0, r4, r5");
    }

    // Memory.
    {
        Instruction i;
        i.op = Opcode::LDG;
        i.dst = 1;
        i.src = {2, kNoReg, kNoReg};
        i.imm = 4;
        add(i, "ldg r1, [r2+4]");
    }
    {
        Instruction i;
        i.op = Opcode::STG;
        i.src = {2, 3, kNoReg};
        i.imm = 8;
        add(i, "stg [r2+8], r3");
    }
    {
        Instruction i;
        i.op = Opcode::LDS;
        i.dst = 1;
        i.src = {2, kNoReg, kNoReg};
        add(i, "lds r1, [r2+0]");
    }
    {
        Instruction i;
        i.op = Opcode::STS;
        i.src = {2, 3, kNoReg};
        add(i, "sts [r2+0], r3");
    }

    // Control flow.
    {
        Instruction i;
        i.op = Opcode::BRA;
        i.target = 5;
        i.reconv = 7;
        add(i, "bra -> 5 (reconv 7)");
    }
    {
        Instruction i;
        i.op = Opcode::JMP;
        i.target = 3;
        add(i, "jmp -> 3");
    }
    add(Instruction{.op = Opcode::BAR}, "bar");
    add(Instruction{.op = Opcode::EXIT}, "exit");

    // Special registers.
    {
        Instruction i;
        i.op = Opcode::S2R;
        i.dst = 1;
        i.sreg = SReg::Tid;
        add(i, "s2r r1, %tid");
    }

    // Hardware-inserted decompress-in-place move: d <- d.
    {
        Instruction i;
        i.op = Opcode::SMOV;
        i.dst = 4;
        i.src = {4, kNoReg, kNoReg};
        add(i, "smov r4, r4");
    }

    // Every opcode of the ISA must be pinned above.
    EXPECT_EQ(cases.size(),
              std::size_t(Opcode::NumOpcodes));
    for (const auto &[op, expected] : cases)
        EXPECT_EQ(expected.first.toString(), expected.second)
            << "opcode " << opcodeName(op);
}

TEST(Disasm, ImmediateAndGuardForms)
{
    Instruction i = alu2(Opcode::IADD);
    i.hasImm = true;
    i.imm = 0x2a;
    EXPECT_EQ(i.toString(), "iadd r1, r2, 0x2a");

    // MOV-immediate loses its register source entirely.
    Instruction m = alu1(Opcode::MOV);
    m.hasImm = true;
    m.imm = 7;
    EXPECT_EQ(m.toString(), "mov r1, 0x7");

    Instruction p;
    p.op = Opcode::ISETP;
    p.pdst = 1;
    p.src = {2, kNoReg, kNoReg};
    p.cmp = CmpOp::NE;
    p.hasImm = true;
    p.imm = 0x10;
    EXPECT_EQ(p.toString(), "isetp.ne p1, r2, 0x10");

    // Guard predicates prefix the mnemonic.
    Instruction g = alu2(Opcode::ISUB);
    g.guard = 2;
    EXPECT_EQ(g.toString(), "@p2 isub r1, r2, r3");
    g.guardNeg = true;
    EXPECT_EQ(g.toString(), "@!p2 isub r1, r2, r3");
}

TEST(Disasm, BuilderKernelRoundTripsToGoldenText)
{
    KernelBuilder b("disasm_probe");
    Reg tid = b.reg(), acc = b.reg(), addr = b.reg(), tmp = b.reg();
    Pred big = b.pred();
    b.s2r(tid, SReg::Tid);
    b.movi(acc, 0);
    b.shli(addr, tid, 2);
    b.ldg(tmp, addr, 16);
    b.isetpi(big, CmpOp::GT, tmp, 100);
    b.ifThen(big, [&] { b.iadd(acc, acc, tmp); });
    b.emit1(Opcode::RCP, tmp, tmp);
    b.bar();
    b.stg(addr, acc, 0);
    const Kernel k = b.build();

    EXPECT_EQ(k.disassemble(),
              ".kernel disasm_probe (regs=4, preds=1, shared=0B)\n"
              "  0: s2r r0, %tid\n"
              "  1: mov r1, 0x0\n"
              "  2: shl r2, r0, 0x2\n"
              "  3: ldg r3, [r2+16]\n"
              "  4: isetp.gt p0, r3, 0x64\n"
              "  5: @!p0 bra -> 7 (reconv 7)\n"
              "  6: iadd r1, r1, r3\n"
              "  7: rcp r3, r3\n"
              "  8: bar\n"
              "  9: stg [r2+0], r1\n"
              "  10: exit\n");
}
