/**
 * @file
 * gscalard tests (serve/server.hpp + serve/client.hpp): one in-process
 * server per test on a throwaway socket path. Covers ping, result
 * correctness against a direct simulation, concurrent clients sharing
 * one engine, malformed input handling, stale-socket recovery, and the
 * SIGINT drain (an in-flight request still gets its response).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/engine.hpp"
#include "harness/runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/serial.hpp"

namespace fs = std::filesystem;
using namespace gs;

namespace
{

/** Short throwaway socket path (sun_path caps at ~108 bytes). */
struct TempSocket
{
    std::string path;

    TempSocket()
    {
        static std::atomic<unsigned> counter{0};
        path = (fs::temp_directory_path() /
                ("gsd-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock"))
                   .string();
    }

    ~TempSocket() { ::unlink(path.c_str()); }
};

GscalarServer::Options
optsFor(const TempSocket &sock)
{
    GscalarServer::Options o;
    o.socketPath = sock.path;
    return o;
}

} // namespace

TEST(GscalarServer, PingPong)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    EXPECT_TRUE(server.running());

    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(GscalarServer, ServedResultMatchesDirectSimulation)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;
    GscalarClient client(sock.path);
    const std::optional<RunResult> served =
        client.run("BT", cfg, &err);
    ASSERT_TRUE(served.has_value()) << err;

    const RunResult direct = runWorkload("BT", cfg);
    EXPECT_EQ(served->workload, direct.workload);
    EXPECT_EQ(served->mode, direct.mode);
    EXPECT_EQ(served->ev.cycles, direct.ev.cycles);
    EXPECT_EQ(served->ev.warpInsts, direct.ev.warpInsts);
    EXPECT_DOUBLE_EQ(served->power.totalW, direct.power.totalW);
    EXPECT_EQ(server.requestsServed(), 1u);
    server.stop();
}

TEST(GscalarServer, ConcurrentClientsShareOneEngine)
{
    TempSocket sock;
    ExperimentEngine engine(2);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Several clients ask for the same point plus one distinct point:
    // every reply must be correct, and the shared run cache must have
    // collapsed the duplicates into one simulation.
    constexpr int kClients = 5;
    std::atomic<int> okCount{0};
    std::vector<std::thread> threads;
    std::uint64_t expect[kClients] = {};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            ArchConfig cfg;
            cfg.mode = (i == kClients - 1) ? ArchMode::Baseline
                                           : ArchMode::GScalarFull;
            GscalarClient client(sock.path);
            std::string cerr2;
            const std::optional<RunResult> r =
                client.run("BT", cfg, &cerr2);
            if (r && r->ev.cycles > 0) {
                expect[i] = r->ev.cycles;
                okCount.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(okCount.load(), kClients);
    EXPECT_EQ(server.requestsServed(), std::uint64_t(kClients));
    // Identical requests agree with each other.
    for (int i = 1; i + 1 < kClients; ++i)
        EXPECT_EQ(expect[i], expect[0]);
    // Duplicates were answered by the run cache, not re-simulated.
    EXPECT_EQ(engine.cacheStats().misses, 2u);
    EXPECT_EQ(engine.cacheStats().hits, std::uint64_t(kClients) - 2);
    server.stop();
}

TEST(GscalarServer, BadRequestsGetErrorsNotCrashes)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    GscalarClient client(sock.path);

    // Unknown workload.
    std::optional<RunResponse> resp =
        client.exchange(RunRequest{"NOPE", ArchConfig{}}, &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::BadRequest);
    EXPECT_NE(resp->error.find("NOPE"), std::string::npos);

    // Invalid configuration (fails ArchConfig::check()).
    ArchConfig bad;
    bad.warpSize = 0;
    resp = client.exchange(RunRequest{"BT", bad}, &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::BadRequest);

    // Garbage frames: the reply is BadRequest (or a dropped
    // connection), never a crash.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.path.c_str());
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);

        // A valid blob of a kind the server does not expect.
        ByteWriter w(BlobKind::Pong);
        ASSERT_TRUE(writeFrame(fd, w.finish()));
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        const std::optional<RunResponse> junkResp =
            deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(junkResp.has_value()) << err;
        EXPECT_EQ(junkResp->status, ResponseStatus::BadRequest);

        // Bytes that are not even an envelope: same outcome.
        const std::vector<std::uint8_t> noise(32, 0x5a);
        ASSERT_TRUE(writeFrame(fd, noise));
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        const std::optional<RunResponse> noiseResp =
            deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(noiseResp.has_value()) << err;
        EXPECT_EQ(noiseResp->status, ResponseStatus::BadRequest);
        ::close(fd);
    }
    // A fresh client is still served afterwards.
    GscalarClient again(sock.path);
    EXPECT_TRUE(again.ping(&err)) << err;
    server.stop();
}

TEST(GscalarServer, StaleSocketFileIsReplaced)
{
    TempSocket sock;
    // Leave a bound-but-dead socket file behind.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.path.c_str());
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // no listen(): connect() will be refused
    }
    ASSERT_TRUE(fs::exists(sock.path));

    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
}

TEST(GscalarServer, SecondServerOnLiveSocketRefused)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer first(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(first.start(&err)) << err;

    GscalarServer second(engine, optsFor(sock));
    EXPECT_FALSE(second.start(&err));
    EXPECT_NE(err.find("already"), std::string::npos);
    first.stop();
}

TEST(GscalarServer, SigintDrainsInFlightRequests)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.installSignalHandlers(&err)) << err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Launch a request, then SIGINT the process while it is (likely
    // still) in flight. The drain must deliver the response before
    // wait() returns, whatever the interleaving.
    std::optional<RunResult> got;
    std::string cerr2;
    std::thread clientThread([&] {
        ArchConfig cfg;
        cfg.mode = ArchMode::WarpedCompression;
        GscalarClient client(sock.path);
        got = client.run("BT", cfg, &cerr2);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(::kill(::getpid(), SIGINT), 0);
    server.wait();
    clientThread.join();

    EXPECT_FALSE(server.running());
    ASSERT_TRUE(got.has_value()) << cerr2;
    EXPECT_EQ(got->workload, "BT");
    EXPECT_GT(got->ev.cycles, 0u);
    EXPECT_EQ(server.requestsServed(), 1u);

    // New connections are refused once the socket is gone.
    GscalarClient late(sock.path);
    EXPECT_FALSE(late.ping(&err));
}

TEST(GscalarServer, StopIsIdempotentAndRestartable)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    std::string err;
    {
        GscalarServer server(engine, optsFor(sock));
        ASSERT_TRUE(server.start(&err)) << err;
        server.stop();
        server.stop(); // no-op
    }
    // The path is reusable by a fresh server immediately.
    GscalarServer next(engine, optsFor(sock));
    ASSERT_TRUE(next.start(&err)) << err;
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    next.stop();
}
