/**
 * @file
 * gscalard tests (serve/server.hpp + serve/client.hpp): one in-process
 * server per test on a throwaway socket path. Covers ping, result
 * correctness against a direct simulation, concurrent clients sharing
 * one engine, malformed input handling, stale-socket recovery, and the
 * SIGINT drain (an in-flight request still gets its response).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/engine.hpp"
#include "harness/runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/serial.hpp"

namespace fs = std::filesystem;
using namespace gs;

namespace
{

/** Short throwaway socket path (sun_path caps at ~108 bytes). */
struct TempSocket
{
    std::string path;

    TempSocket()
    {
        static std::atomic<unsigned> counter{0};
        path = (fs::temp_directory_path() /
                ("gsd-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock"))
                   .string();
    }

    ~TempSocket() { ::unlink(path.c_str()); }
};

GscalarServer::Options
optsFor(const TempSocket &sock)
{
    GscalarServer::Options o;
    o.socketPath = sock.path;
    return o;
}

} // namespace

TEST(GscalarServer, PingPong)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    EXPECT_TRUE(server.running());

    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(GscalarServer, ServedResultMatchesDirectSimulation)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;
    GscalarClient client(sock.path);
    const std::optional<RunResult> served =
        client.run("BT", cfg, &err);
    ASSERT_TRUE(served.has_value()) << err;

    const RunResult direct = runWorkload("BT", cfg);
    EXPECT_EQ(served->workload, direct.workload);
    EXPECT_EQ(served->mode, direct.mode);
    EXPECT_EQ(served->ev.cycles, direct.ev.cycles);
    EXPECT_EQ(served->ev.warpInsts, direct.ev.warpInsts);
    EXPECT_DOUBLE_EQ(served->power.totalW, direct.power.totalW);
    EXPECT_EQ(server.requestsServed(), 1u);
    server.stop();
}

TEST(GscalarServer, ConcurrentClientsShareOneEngine)
{
    TempSocket sock;
    ExperimentEngine engine(2);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Several clients ask for the same point plus one distinct point:
    // every reply must be correct, and the shared run cache must have
    // collapsed the duplicates into one simulation.
    constexpr int kClients = 5;
    std::atomic<int> okCount{0};
    std::vector<std::thread> threads;
    std::uint64_t expect[kClients] = {};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            ArchConfig cfg;
            cfg.mode = (i == kClients - 1) ? ArchMode::Baseline
                                           : ArchMode::GScalarFull;
            GscalarClient client(sock.path);
            std::string cerr2;
            const std::optional<RunResult> r =
                client.run("BT", cfg, &cerr2);
            if (r && r->ev.cycles > 0) {
                expect[i] = r->ev.cycles;
                okCount.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(okCount.load(), kClients);
    EXPECT_EQ(server.requestsServed(), std::uint64_t(kClients));
    // Identical requests agree with each other.
    for (int i = 1; i + 1 < kClients; ++i)
        EXPECT_EQ(expect[i], expect[0]);
    // Duplicates never re-simulate: there are two unique points, so
    // the engine computed exactly twice. Each duplicate was absorbed
    // either in flight (a coalesced follower) or by the memo cache
    // (it arrived after its flight had landed).
    EXPECT_EQ(engine.cacheStats().misses, 2u);
    EXPECT_EQ(engine.cacheStats().hits + server.coalesceFollowers(),
              std::uint64_t(kClients) - 2);
    EXPECT_GE(server.coalesceLeaders(), 2u);
    server.stop();
}

TEST(GscalarServer, BadRequestsGetErrorsNotCrashes)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    GscalarClient client(sock.path);

    // Unknown workload.
    RunRequest unknown;
    unknown.workload = "NOPE";
    std::optional<RunResponse> resp = client.exchange(unknown, &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::BadRequest);
    EXPECT_NE(resp->error.find("NOPE"), std::string::npos);

    // Invalid configuration (fails ArchConfig::check()).
    RunRequest badReq;
    badReq.workload = "BT";
    badReq.cfg.warpSize = 0;
    resp = client.exchange(badReq, &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::BadRequest);

    // Garbage frames: the reply is BadRequest (or a dropped
    // connection), never a crash.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.path.c_str());
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);

        // A valid blob of a kind the server does not expect.
        ByteWriter w(BlobKind::Pong);
        ASSERT_TRUE(writeFrame(fd, w.finish()));
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        const std::optional<RunResponse> junkResp =
            deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(junkResp.has_value()) << err;
        EXPECT_EQ(junkResp->status, ResponseStatus::BadRequest);

        // Bytes that are not even an envelope: same outcome.
        const std::vector<std::uint8_t> noise(32, 0x5a);
        ASSERT_TRUE(writeFrame(fd, noise));
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        const std::optional<RunResponse> noiseResp =
            deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(noiseResp.has_value()) << err;
        EXPECT_EQ(noiseResp->status, ResponseStatus::BadRequest);
        ::close(fd);
    }
    // A fresh client is still served afterwards.
    GscalarClient again(sock.path);
    EXPECT_TRUE(again.ping(&err)) << err;
    server.stop();
}

TEST(GscalarServer, StaleSocketFileIsReplaced)
{
    TempSocket sock;
    // Leave a bound-but-dead socket file behind.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.path.c_str());
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // no listen(): connect() will be refused
    }
    ASSERT_TRUE(fs::exists(sock.path));

    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
}

TEST(GscalarServer, SecondServerOnLiveSocketRefused)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer first(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(first.start(&err)) << err;

    GscalarServer second(engine, optsFor(sock));
    EXPECT_FALSE(second.start(&err));
    EXPECT_NE(err.find("already"), std::string::npos);
    first.stop();
}

TEST(GscalarServer, SigintDrainsInFlightRequests)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.installSignalHandlers(&err)) << err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Launch a request, then SIGINT the process while it is (likely
    // still) in flight. The drain must deliver the response before
    // wait() returns, whatever the interleaving.
    std::optional<RunResult> got;
    std::string cerr2;
    std::thread clientThread([&] {
        ArchConfig cfg;
        cfg.mode = ArchMode::WarpedCompression;
        GscalarClient client(sock.path);
        got = client.run("BT", cfg, &cerr2);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(::kill(::getpid(), SIGINT), 0);
    server.wait();
    clientThread.join();

    EXPECT_FALSE(server.running());
    ASSERT_TRUE(got.has_value()) << cerr2;
    EXPECT_EQ(got->workload, "BT");
    EXPECT_GT(got->ev.cycles, 0u);
    EXPECT_EQ(server.requestsServed(), 1u);

    // New connections are refused once the socket is gone.
    GscalarClient late(sock.path);
    EXPECT_FALSE(late.ping(&err));
}

TEST(GscalarServer, StopIsIdempotentAndRestartable)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    std::string err;
    {
        GscalarServer server(engine, optsFor(sock));
        ASSERT_TRUE(server.start(&err)) << err;
        server.stop();
        server.stop(); // no-op
    }
    // The path is reusable by a fresh server immediately.
    GscalarServer next(engine, optsFor(sock));
    ASSERT_TRUE(next.start(&err)) << err;
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    next.stop();
}

TEST(GscalarServer, StatsRoundTrip)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer server(engine, optsFor(sock));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    GscalarClient client(sock.path);

    // Before any run: counters are zero but the reply is well-formed.
    std::optional<DaemonStats> s = client.stats(&err);
    ASSERT_TRUE(s.has_value()) << err;
    EXPECT_EQ(s->requestsServed, 0u);
    EXPECT_GE(s->uptimeSeconds, 0.0);
    EXPECT_EQ(s->jobs, 1u);
    EXPECT_TRUE(s->workloads.empty());

    // Two runs of the same point: one simulation, one memo hit, both
    // recorded in the per-workload latency histogram.
    ArchConfig cfg;
    ASSERT_TRUE(client.run("BT", cfg, &err).has_value()) << err;
    ASSERT_TRUE(client.run("BT", cfg, &err).has_value()) << err;

    s = client.stats(&err);
    ASSERT_TRUE(s.has_value()) << err;
    EXPECT_EQ(s->requestsServed, 2u);
    EXPECT_EQ(s->cacheMisses, 1u);
    EXPECT_EQ(s->cacheHits, 1u);
    EXPECT_GT(s->simCycles, 0u);
    EXPECT_GT(s->warpInsts, 0u);
    ASSERT_EQ(s->workloads.size(), 1u);
    EXPECT_EQ(s->workloads[0].workload, "BT");
    EXPECT_EQ(s->workloads[0].latency.count(), 2u);
    EXPECT_GT(s->workloads[0].latency.maxSeconds(), 0.0);
    std::uint64_t bucketSum = 0;
    for (const std::uint64_t b : s->workloads[0].latency.buckets())
        bucketSum += b;
    EXPECT_EQ(bucketSum, 2u);

    server.stop();
}

TEST(GscalarServer, StatsSerializationSurvivesTheWire)
{
    // Pure protocol round-trip, no sockets: every field and nested
    // histogram must come back bit-identical.
    DaemonStats s;
    s.uptimeSeconds = 12.5;
    s.requestsServed = 42;
    s.activeConnections = 3;
    s.jobs = 8;
    s.queueDepth = 2;
    s.peakQueueDepth = 7;
    s.cacheHits = 10;
    s.cacheMisses = 5;
    s.diskCacheHits = 1;
    s.diskCacheStores = 4;
    s.simWallSeconds = 3.25;
    s.simCycles = 123456789;
    s.warpInsts = 987654321;
    s.overloads = 6;
    s.idleCloses = 2;
    s.frameRejects = 1;
    s.coalesceLeaders = 9;
    s.coalesceFollowers = 33;
    s.coalescePromotions = 1;
    s.batches = 14;
    s.batchPeak = 4;
    s.queueSheds = 5;
    s.queueDepths = {3, 2, 1};
    s.queuePeaks = {8, 6, 4};
    s.reactorLoop.record(0.0001);
    s.reactorLoop.record(0.01);
    WorkloadLatency wl;
    wl.workload = "BT";
    wl.latency.record(0.005);
    wl.latency.record(0.5);
    wl.latency.record(20.0);
    s.workloads.push_back(wl);
    wl.workload = "MM";
    s.workloads.push_back(wl);

    const std::vector<std::uint8_t> blob = serializeStatsResponse(s);
    EXPECT_EQ(peekKind(blob.data(), blob.size()),
              BlobKind::StatsResponse);

    std::string err;
    const std::optional<DaemonStats> back =
        deserializeStatsResponse(blob.data(), blob.size(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_DOUBLE_EQ(back->uptimeSeconds, 12.5);
    EXPECT_EQ(back->requestsServed, 42u);
    EXPECT_EQ(back->activeConnections, 3u);
    EXPECT_EQ(back->jobs, 8u);
    EXPECT_EQ(back->queueDepth, 2u);
    EXPECT_EQ(back->peakQueueDepth, 7u);
    EXPECT_EQ(back->cacheHits, 10u);
    EXPECT_EQ(back->cacheMisses, 5u);
    EXPECT_EQ(back->diskCacheHits, 1u);
    EXPECT_EQ(back->diskCacheStores, 4u);
    EXPECT_DOUBLE_EQ(back->simWallSeconds, 3.25);
    EXPECT_EQ(back->simCycles, 123456789u);
    EXPECT_EQ(back->warpInsts, 987654321u);
    EXPECT_EQ(back->overloads, 6u);
    EXPECT_EQ(back->idleCloses, 2u);
    EXPECT_EQ(back->frameRejects, 1u);
    EXPECT_EQ(back->coalesceLeaders, 9u);
    EXPECT_EQ(back->coalesceFollowers, 33u);
    EXPECT_EQ(back->coalescePromotions, 1u);
    EXPECT_EQ(back->batches, 14u);
    EXPECT_EQ(back->batchPeak, 4u);
    EXPECT_EQ(back->queueSheds, 5u);
    EXPECT_EQ(back->queueDepths, s.queueDepths);
    EXPECT_EQ(back->queuePeaks, s.queuePeaks);
    EXPECT_EQ(back->reactorLoop.count(), 2u);
    EXPECT_DOUBLE_EQ(back->reactorLoop.totalSeconds(), 0.0101);
    EXPECT_EQ(back->reactorLoop.buckets(), s.reactorLoop.buckets());
    ASSERT_EQ(back->workloads.size(), 2u);
    EXPECT_EQ(back->workloads[0].workload, "BT");
    EXPECT_EQ(back->workloads[1].workload, "MM");
    for (const WorkloadLatency &got : back->workloads) {
        EXPECT_EQ(got.latency.count(), 3u);
        EXPECT_DOUBLE_EQ(got.latency.totalSeconds(), 20.505);
        EXPECT_DOUBLE_EQ(got.latency.maxSeconds(), 20.0);
        EXPECT_EQ(got.latency.buckets(), wl.latency.buckets());
    }

    // Corruption is caught by the checksum, not parsed into garbage.
    std::vector<std::uint8_t> bad = blob;
    bad[bad.size() / 2] ^= 0x40;
    EXPECT_FALSE(
        deserializeStatsResponse(bad.data(), bad.size()).has_value());
}
