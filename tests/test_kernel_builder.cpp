#include <gtest/gtest.h>

#include "isa/kernel_builder.hpp"

namespace gs
{
namespace
{

TEST(KernelBuilder, BuildAppendsExitAndValidates)
{
    KernelBuilder kb("k");
    const Reg a = kb.reg();
    kb.movi(a, 1);
    const Kernel k = kb.build();
    ASSERT_EQ(k.code.size(), 2u);
    EXPECT_EQ(k.code.back().op, Opcode::EXIT);
    EXPECT_EQ(k.numRegs, 1u);
}

TEST(KernelBuilder, RegisterAndPredAllocation)
{
    KernelBuilder kb("k");
    EXPECT_EQ(kb.reg().idx, 0);
    EXPECT_EQ(kb.reg().idx, 1);
    EXPECT_EQ(kb.pred().idx, 0);
    EXPECT_EQ(kb.pred().idx, 1);
    EXPECT_EQ(kb.shared(8), 0u);
    EXPECT_EQ(kb.shared(3), 8u);  // 4-byte aligned
    EXPECT_EQ(kb.shared(4), 12u);
}

TEST(KernelBuilder, IfThenBranchShape)
{
    KernelBuilder kb("k");
    const Reg a = kb.reg();
    const Pred p = kb.pred();
    kb.movi(a, 0);
    kb.isetpi(p, CmpOp::EQ, a, 0);
    kb.ifThen(p, [&] { kb.iaddi(a, a, 1); });
    const Kernel k = kb.build();

    const Instruction &bra = k.code[2];
    ASSERT_EQ(bra.op, Opcode::BRA);
    EXPECT_EQ(bra.guard, p.idx);
    EXPECT_TRUE(bra.guardNeg); // !p lanes skip the body
    EXPECT_EQ(bra.target, 4);  // past the single-instruction body
    EXPECT_EQ(bra.reconv, 4);
}

TEST(KernelBuilder, IfElseBranchShape)
{
    KernelBuilder kb("k");
    const Reg a = kb.reg();
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::EQ, a, 0);
    kb.ifElse(
        p, [&] { kb.iaddi(a, a, 1); }, [&] { kb.iaddi(a, a, 2); });
    const Kernel k = kb.build();

    // 0: isetp, 1: bra, 2: then, 3: jmp, 4: else, 5: exit
    const Instruction &bra = k.code[1];
    ASSERT_EQ(bra.op, Opcode::BRA);
    EXPECT_EQ(bra.target, 4); // else block
    EXPECT_EQ(bra.reconv, 5); // after both
    const Instruction &jmp = k.code[3];
    ASSERT_EQ(jmp.op, Opcode::JMP);
    EXPECT_EQ(jmp.target, 5);
}

TEST(KernelBuilder, ForRangeShape)
{
    KernelBuilder kb("k");
    const Reg i = kb.reg();
    const Reg a = kb.reg();
    kb.forRangeI(i, 0, 4, [&] { kb.iaddi(a, a, 1); });
    const Kernel k = kb.build();

    // 0: movi i, 1: isetp, 2: bra exit, 3: body, 4: iaddi i, 5: jmp, 6: exit
    EXPECT_EQ(k.code[0].op, Opcode::MOV);
    EXPECT_EQ(k.code[1].op, Opcode::ISETP);
    const Instruction &bra = k.code[2];
    ASSERT_EQ(bra.op, Opcode::BRA);
    EXPECT_EQ(bra.target, 6);
    EXPECT_EQ(bra.reconv, 6);
    const Instruction &jmp = k.code[5];
    ASSERT_EQ(jmp.op, Opcode::JMP);
    EXPECT_EQ(jmp.target, 1); // back to the condition
}

TEST(KernelBuilder, PredicatedRegionSetsGuards)
{
    KernelBuilder kb("k");
    const Reg a = kb.reg();
    const Pred p = kb.pred();
    kb.movi(a, 0);
    kb.predicated(p, /*neg=*/true, [&] {
        kb.iaddi(a, a, 1);
        kb.iaddi(a, a, 2);
    });
    kb.iaddi(a, a, 3);
    const Kernel k = kb.build();

    EXPECT_EQ(k.code[1].guard, p.idx);
    EXPECT_TRUE(k.code[1].guardNeg);
    EXPECT_EQ(k.code[2].guard, p.idx);
    EXPECT_EQ(k.code[3].guard, kNoPred);
}

TEST(KernelBuilder, DisassembleContainsMnemonics)
{
    KernelBuilder kb("demo");
    const Reg a = kb.reg();
    const Reg b = kb.reg();
    kb.movi(a, 7);
    kb.ldg(b, a, 4);
    kb.stg(a, b);
    const Kernel k = kb.build();
    const std::string d = k.disassemble();
    EXPECT_NE(d.find("demo"), std::string::npos);
    EXPECT_NE(d.find("mov"), std::string::npos);
    EXPECT_NE(d.find("ldg"), std::string::npos);
    EXPECT_NE(d.find("stg"), std::string::npos);
    EXPECT_NE(d.find("exit"), std::string::npos);
}

TEST(KernelBuilderDeath, ValidateRejectsBadRegister)
{
    Kernel k;
    k.name = "bad";
    Instruction i;
    i.op = Opcode::MOV;
    i.dst = 5; // out of range: numRegs == 1
    i.src[0] = 0;
    k.code.push_back(i);
    Instruction e;
    e.op = Opcode::EXIT;
    k.code.push_back(e);
    k.numRegs = 1;
    EXPECT_EXIT(k.validate(), ::testing::ExitedWithCode(1), "exceeds");
}

TEST(KernelBuilderDeath, ValidateRejectsMissingExit)
{
    Kernel k;
    k.name = "bad";
    Instruction i;
    i.op = Opcode::BAR;
    k.code.push_back(i);
    EXPECT_EXIT(k.validate(), ::testing::ExitedWithCode(1),
                "does not end with EXIT");
}

TEST(KernelBuilderDeath, ValidateRejectsWildBranch)
{
    Kernel k;
    k.name = "bad";
    Instruction b;
    b.op = Opcode::JMP;
    b.target = 99;
    k.code.push_back(b);
    Instruction e;
    e.op = Opcode::EXIT;
    k.code.push_back(e);
    EXPECT_EXIT(k.validate(), ::testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace gs
