/**
 * @file
 * Observability-layer tests (src/obs): metric-registry completeness
 * (every EventCounts field registered exactly once, unique names), the
 * structured result emitters (JSON document shape and stable key
 * order, CSV header/row agreement), harness self-metrics (phase
 * timers, latency histogram, atomic line sink) and the sampling JSONL
 * tracer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/events.hpp"
#include "common/table.hpp"
#include "obs/jsonl_tracer.hpp"
#include "obs/metrics.hpp"
#include "obs/result.hpp"
#include "obs/stats.hpp"

using namespace gs;

// ---- metric registry -----------------------------------------------------

TEST(MetricRegistry, EveryEventCountsFieldRegisteredExactlyOnce)
{
    // The array size is pinned to kEventCountFields at compile time;
    // here we prove the entries cover distinct fields of the struct.
    // Since EventCounts is exactly kEventCountFields 8-byte fields
    // (static_assert in events.hpp), distinct member addresses imply
    // every field appears exactly once.
    EventCounts ev{};
    std::set<const void *> addresses;
    for (const MetricDef &m : eventMetrics()) {
        ASSERT_TRUE((m.u64 != nullptr) != (m.f64 != nullptr))
            << m.name << ": exactly one member pointer must be set";
        const void *addr = m.u64
                               ? static_cast<const void *>(&(ev.*m.u64))
                               : static_cast<const void *>(&(ev.*m.f64));
        EXPECT_GE(addr, static_cast<const void *>(&ev));
        EXPECT_LT(addr, static_cast<const void *>(&ev + 1));
        EXPECT_TRUE(addresses.insert(addr).second)
            << m.name << " aliases another registered field";
    }
    EXPECT_EQ(addresses.size(), kEventCountFields);
}

TEST(MetricRegistry, NamesAreUniqueAndDocumented)
{
    std::set<std::string> names;
    for (const MetricDef &m : eventMetrics()) {
        ASSERT_NE(m.name, nullptr);
        EXPECT_FALSE(std::string(m.name).empty());
        EXPECT_FALSE(std::string(m.unit).empty()) << m.name;
        EXPECT_FALSE(std::string(m.doc).empty()) << m.name;
        EXPECT_TRUE(names.insert(m.name).second)
            << "duplicate metric name " << m.name;
    }
    // Derived and power metrics must not collide with counters either.
    for (const DerivedMetricDef &m : derivedEventMetrics())
        EXPECT_TRUE(names.insert(m.name).second)
            << "duplicate metric name " << m.name;
    for (const PowerMetricDef &m : powerMetrics())
        EXPECT_TRUE(names.insert(m.name).second)
            << "duplicate metric name " << m.name;
}

TEST(MetricRegistry, LookupAndValueExtraction)
{
    EventCounts ev{};
    ev.cycles = 100;
    ev.warpInsts = 250;

    const MetricDef *cycles = findEventMetric("cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_FALSE(cycles->isFloat());
    EXPECT_DOUBLE_EQ(cycles->value(ev), 100.0);

    EXPECT_EQ(findEventMetric("no_such_metric"), nullptr);

    // Derived ipc = warpInsts / cycles.
    const auto &derived = derivedEventMetrics();
    const auto ipc = std::find_if(
        derived.begin(), derived.end(),
        [](const DerivedMetricDef &d) {
            return std::string(d.name) == "ipc";
        });
    ASSERT_NE(ipc, derived.end());
    EXPECT_DOUBLE_EQ(ipc->value(ev), 2.5);
}

// ---- structured results --------------------------------------------------

namespace
{

SuiteResult
sampleResult()
{
    Table t("Sample title");
    t.row({"Bench", "Value"});
    t.row({"BT", "1.00"});
    t.row({"MM", "2.00"});
    RunResult run;
    run.workload = "BT";
    run.mode = ArchMode::Baseline;
    run.ev.cycles = 10;
    run.ev.warpInsts = 20;
    return makeSuiteResult("sample", "Fig. 0", t, {run});
}

} // namespace

TEST(ResultModel, MakeSuiteResultCapturesTableStructure)
{
    const SuiteResult r = sampleResult();
    EXPECT_EQ(r.experiment, "sample");
    EXPECT_EQ(r.tag, "Fig. 0");
    EXPECT_EQ(r.title, "Sample title");
    ASSERT_EQ(r.columns, (std::vector<std::string>{"Bench", "Value"}));
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_EQ(r.rows[0][0], "BT");
    EXPECT_EQ(r.rows[1][1], "2.00");
    ASSERT_EQ(r.runs.size(), 1u);
    EXPECT_NE(r.text.find("Sample title"), std::string::npos);
}

TEST(ResultModel, ParseResultFormatRoundTrips)
{
    for (const ResultFormat f :
         {ResultFormat::Text, ResultFormat::Json, ResultFormat::Csv})
        EXPECT_EQ(parseResultFormat(resultFormatName(f)), f);
    EXPECT_FALSE(parseResultFormat("yaml").has_value());
    EXPECT_FALSE(parseResultFormat("").has_value());
}

TEST(ResultModel, TextSinkEmitsGoldenBytes)
{
    const SuiteResult r = sampleResult();
    std::ostringstream os;
    TextSink sink(os);
    sink.emit(r);
    // Exactly the historical `std::cout << runX() << std::endl`.
    EXPECT_EQ(os.str(), r.text + "\n");
}

TEST(ResultModel, JsonSinkEmitsStableKeyOrder)
{
    const SuiteResult r = sampleResult();
    std::ostringstream os;
    JsonSink sink(os);
    sink.emit(r);
    const std::string doc = os.str();

    // Top-level keys in the documented, fixed order.
    const char *keys[] = {"\"schema\"", "\"experiment\"", "\"tag\"",
                          "\"title\"",  "\"columns\"",    "\"rows\"",
                          "\"runs\""};
    std::size_t last = 0;
    for (const char *k : keys) {
        const std::size_t pos = doc.find(k);
        ASSERT_NE(pos, std::string::npos) << k << " missing";
        EXPECT_GT(pos, last) << k << " out of order";
        last = pos;
    }
    EXPECT_NE(doc.find("\"gscalar.bench.v1\""), std::string::npos);

    // Run objects carry the counter/derived/power sections in order.
    const std::size_t counters = doc.find("\"counters\"");
    const std::size_t derived = doc.find("\"derived\"");
    const std::size_t power = doc.find("\"power\"");
    ASSERT_NE(counters, std::string::npos);
    ASSERT_NE(derived, std::string::npos);
    ASSERT_NE(power, std::string::npos);
    EXPECT_LT(counters, derived);
    EXPECT_LT(derived, power);

    // Integer counters print as integers, not floats.
    EXPECT_NE(doc.find("\"cycles\": 10"), std::string::npos);

    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
}

TEST(ResultModel, CsvSinkRowsMatchHeaderArity)
{
    const SuiteResult r = sampleResult();
    std::ostringstream os;
    CsvSink sink(os);
    sink.emit(r);
    std::istringstream in(os.str());
    std::string comment, header, row;
    ASSERT_TRUE(std::getline(in, comment));
    EXPECT_EQ(comment.rfind("# ", 0), 0u);
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    EXPECT_EQ(header, runCsvHeader());
    EXPECT_EQ(row.rfind("BT,baseline,10,", 0), 0u);
}

TEST(ResultModel, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\ny\tz"), "x\\ny\\tz");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ---- harness self-metrics ------------------------------------------------

TEST(PhaseTimers, AccumulatesInInsertionOrder)
{
    PhaseTimers t;
    t.add("simulate", 1.0);
    t.add("disk", 0.25);
    t.add("simulate", 2.0);
    const auto entries = t.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "simulate");
    EXPECT_DOUBLE_EQ(entries[0].seconds, 3.0);
    EXPECT_EQ(entries[0].samples, 2u);
    EXPECT_EQ(entries[1].name, "disk");
    EXPECT_EQ(entries[1].samples, 1u);
    EXPECT_NE(t.summary().find("simulate"), std::string::npos);
}

TEST(LatencyHistogram, BucketsAndSummary)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.meanSeconds(), 0.0);

    h.record(0.001); // below the first bound
    h.record(0.05);  // mid-range
    h.record(100.0); // above the last bound
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.maxSeconds(), 100.0);
    EXPECT_NEAR(h.totalSeconds(), 100.051, 1e-9);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
    std::uint64_t sum = 0;
    for (const std::uint64_t b : h.buckets())
        sum += b;
    EXPECT_EQ(sum, 3u);

    // Bounds are increasing; labels render.
    for (std::size_t i = 1; i + 1 < LatencyHistogram::kBuckets; ++i)
        EXPECT_LT(LatencyHistogram::bucketBound(i - 1),
                  LatencyHistogram::bucketBound(i));
    EXPECT_FALSE(LatencyHistogram::bucketLabel(0).empty());
    EXPECT_NE(h.summary().find("n=3"), std::string::npos);

    LatencyHistogram back;
    back.restore(h.buckets(), h.count(), h.totalSeconds(),
                 h.maxSeconds());
    EXPECT_EQ(back.buckets(), h.buckets());
    EXPECT_DOUBLE_EQ(back.meanSeconds(), h.meanSeconds());
}

TEST(LineSink, ConcurrentWritersNeverInterleave)
{
    std::ostringstream os;
    LineSink sink(os);
    constexpr int kThreads = 8, kLines = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&sink, t] {
            const std::string line(20, char('a' + t));
            for (int i = 0; i < kLines; ++i)
                sink.writeLine(line);
        });
    for (std::thread &t : threads)
        t.join();

    std::istringstream in(os.str());
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
        ++n;
        ASSERT_EQ(line.size(), 20u);
        // A torn line would mix characters from two threads.
        EXPECT_EQ(std::count(line.begin(), line.end(), line[0]), 20)
            << "interleaved line: " << line;
    }
    EXPECT_EQ(n, kThreads * kLines);
}

// ---- JSONL tracer --------------------------------------------------------

TEST(JsonlTracer, ParseTraceSpec)
{
    const auto plain = parseTraceSpec("/tmp/trace.jsonl");
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->path, "/tmp/trace.jsonl");
    EXPECT_EQ(plain->sampleN, 1u);

    const auto sampled = parseTraceSpec("/tmp/t.jsonl:1/16");
    ASSERT_TRUE(sampled.has_value());
    EXPECT_EQ(sampled->path, "/tmp/t.jsonl");
    EXPECT_EQ(sampled->sampleN, 16u);

    EXPECT_FALSE(parseTraceSpec("/tmp/t:1/0").has_value());
    EXPECT_FALSE(parseTraceSpec("/tmp/t:1/abc").has_value());
    EXPECT_FALSE(parseTraceSpec("").has_value());
}

TEST(JsonlTracer, SamplesIssueEventsKeepsLifecycleEvents)
{
    std::ostringstream os;
    JsonlTracer tracer(os, 4);

    tracer.onRunBegin("BT", ArchMode::GScalarFull);
    Instruction inst{};
    Tracer::IssueEvent e;
    e.inst = &inst;
    for (int i = 0; i < 12; ++i)
        tracer.onIssue(e);
    tracer.onCtaLaunch(0, 1, 5);
    tracer.onCtaRetire(0, 1, 9);
    tracer.onRunEnd("BT");

    // 12 issues sampled 1/4 -> 3, plus 4 lifecycle events.
    EXPECT_EQ(tracer.linesWritten(), 7u);

    std::istringstream in(os.str());
    std::string line;
    int issues = 0, lifecycle = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        if (line.find("\"ev\": \"issue\"") != std::string::npos)
            ++issues;
        else
            ++lifecycle;
    }
    EXPECT_EQ(issues, 3);
    EXPECT_EQ(lifecycle, 4);
    EXPECT_NE(os.str().find("\"ev\": \"run_begin\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"workload\": \"BT\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"mode\": \"gscalar\""),
              std::string::npos);
}
