/**
 * @file
 * Reactor serving-tier tests (serve/server.hpp): epoll connection
 * lifecycle (EOF reclaims the slot with no further accept), in-flight
 * coalescing (one engine computation, byte-identical fan-out),
 * leader-crash promotion, priority admission control, the TCP
 * listener, and strict connect-target parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/fault.hpp"
#include "harness/engine.hpp"
#include "harness/runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace fs = std::filesystem;
using namespace gs;

namespace
{

/** Short throwaway socket path (sun_path caps at ~108 bytes). */
struct TempSocket
{
    std::string path;

    TempSocket()
    {
        static std::atomic<unsigned> counter{0};
        path = (fs::temp_directory_path() /
                ("gsr-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock"))
                   .string();
    }

    ~TempSocket() { ::unlink(path.c_str()); }
};

/** Disarm the global injector on scope exit, whatever happens. */
struct DisarmAtExit
{
    ~DisarmAtExit() { faultInjector().disarm(); }
};

void
arm(const std::string &spec)
{
    std::string err;
    ASSERT_TRUE(faultInjector().configure(spec, &err)) << err;
}

int
rawConnect(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)),
        0);
    return fd;
}

/** Spin until @p pred holds or ~2 s pass. */
template <typename Pred>
bool
eventually(Pred pred)
{
    for (int i = 0; i < 200; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

std::vector<std::uint8_t>
requestBlob(std::uint64_t seed, std::uint32_t priority)
{
    RunRequest req;
    req.workload = "BT";
    req.cfg.seed = seed;
    req.priority = priority;
    return serializeRequest(req);
}

} // namespace

TEST(ReactorServe, EofReclaimsConnectionSlotImmediately)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    const int fd = rawConnect(sock.path);
    ASSERT_TRUE(writeFrame(fd, serializePing()));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    EXPECT_EQ(server.activeConnections(), 1u);

    // EOF alone must reclaim the slot: no further connect (the old
    // thread-per-connection server only reaped dead slots when the
    // *next* accept scanned for them).
    ::close(fd);
    EXPECT_TRUE(eventually(
        [&] { return server.activeConnections() == 0; }))
        << "slot still held " << server.activeConnections();
    server.stop();
}

TEST(ReactorServe, CoalescingComputesOnceByteIdentically)
{
    TempSocket sock;
    ExperimentEngine engine(2);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // K clients submit the identical (workload, fingerprint) point.
    // All submits are written before any response is read, so the
    // duplicates are in flight together.
    constexpr int kClients = 6;
    const std::vector<std::uint8_t> blob =
        requestBlob(/*seed=*/7, kDefaultPriority);
    int fds[kClients];
    for (int i = 0; i < kClients; ++i) {
        fds[i] = rawConnect(sock.path);
        ASSERT_TRUE(writeFrame(fds[i], blob));
    }

    std::vector<std::uint8_t> first;
    for (int i = 0; i < kClients; ++i) {
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(readFrame(fds[i], payload, &err), 1) << err;
        const std::optional<RunResponse> resp =
            deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(resp.has_value()) << err;
        EXPECT_EQ(resp->status, ResponseStatus::Ok) << resp->error;
        EXPECT_GT(resp->result.ev.cycles, 0u);
        if (i == 0)
            first = payload;
        else
            EXPECT_EQ(payload, first)
                << "client " << i << " got different response bytes";
        ::close(fds[i]);
    }

    // Counter-verified: the engine simulated exactly once; every
    // duplicate was absorbed by the flight (or, if it arrived after
    // the flight landed, by the memo cache).
    EXPECT_EQ(engine.cacheStats().misses, 1u);
    EXPECT_EQ(server.coalesceFollowers() + engine.cacheStats().hits,
              std::uint64_t(kClients) - 1);
    EXPECT_GE(server.coalesceLeaders(), 1u);
    EXPECT_EQ(server.requestsServed(), std::uint64_t(kClients));

    // The coalescing tier shows up in the stats probe too.
    GscalarClient probe(sock.path);
    const std::optional<DaemonStats> s = probe.stats(&err);
    ASSERT_TRUE(s.has_value()) << err;
    EXPECT_EQ(s->coalesceLeaders, server.coalesceLeaders());
    EXPECT_EQ(s->coalesceFollowers, server.coalesceFollowers());
    EXPECT_GE(s->batches, 1u);
    EXPECT_GT(s->reactorLoop.count(), 0u);
    server.stop();
}

TEST(ReactorServe, LeaderCrashPromotesAndFollowersStillAnswered)
{
    DisarmAtExit disarm;
    arm("serve:coalesce-leader-crash:1:7");

    TempSocket sock;
    ExperimentEngine engine(2);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Every leader crashes (rate 1), so every flight must be promoted
    // exactly once (the rerun is the recovery path, exempt from
    // injection) and still answer every waiter correctly.
    constexpr int kClients = 4;
    const std::vector<std::uint8_t> blob =
        requestBlob(/*seed=*/11, kDefaultPriority);
    int fds[kClients];
    for (int i = 0; i < kClients; ++i) {
        fds[i] = rawConnect(sock.path);
        ASSERT_TRUE(writeFrame(fds[i], blob));
    }

    std::vector<std::uint8_t> first;
    for (int i = 0; i < kClients; ++i) {
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(readFrame(fds[i], payload, &err), 1) << err;
        const std::optional<RunResponse> resp =
            deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(resp.has_value()) << err;
        EXPECT_EQ(resp->status, ResponseStatus::Ok) << resp->error;
        if (i == 0)
            first = payload;
        else
            EXPECT_EQ(payload, first);
        ::close(fds[i]);
    }
    EXPECT_GE(server.coalescePromotions(), 1u);
    server.stop();

    // The served result matches a fault-free direct simulation.
    faultInjector().disarm();
    std::string derr;
    const std::optional<RunResponse> got =
        deserializeResponse(first.data(), first.size(), &derr);
    ASSERT_TRUE(got.has_value()) << derr;
    ArchConfig cfg;
    cfg.seed = 11;
    const RunResult direct = runWorkload("BT", cfg);
    EXPECT_EQ(got->result.ev.cycles, direct.ev.cycles);
    EXPECT_EQ(got->result.ev.warpInsts, direct.ev.warpInsts);
}

TEST(ReactorServe, SpuriousEpollWakeupsAreAbsorbed)
{
    DisarmAtExit disarm;
    arm("serve:epoll-spurious:1:3");

    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // The reactor drops (bounded) iterations on the floor; level-
    // triggered epoll re-reports everything, so service is merely
    // delayed, never wrong.
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    ArchConfig cfg;
    const std::optional<RunResult> served =
        client.run("BT", cfg, &err);
    ASSERT_TRUE(served.has_value()) << err;
    EXPECT_GE(faultInjector().injectedAt("serve"), 1u);
    server.stop();

    faultInjector().disarm();
    const RunResult direct = runWorkload("BT", cfg);
    EXPECT_EQ(served->ev.cycles, direct.ev.cycles);
}

TEST(ReactorServe, AdmissionShedsLowestBandFirst)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    o.serviceThreads = 1;
    o.maxQueuedFlights = 1;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    auto queuedTotal = [&] {
        const DaemonStats s = server.stats();
        return s.queueDepths[0] + s.queueDepths[1] + s.queueDepths[2];
    };

    // A occupies the single service thread...
    const int fdA = rawConnect(sock.path);
    ASSERT_TRUE(writeFrame(fdA, requestBlob(101, 1)));
    ASSERT_TRUE(eventually([&] {
        return server.coalesceLeaders() >= 1 && queuedTotal() == 0;
    }));

    // ...B fills the one queue slot at the lowest band...
    const int fdB = rawConnect(sock.path);
    ASSERT_TRUE(writeFrame(fdB, requestBlob(102, 0)));
    ASSERT_TRUE(eventually([&] { return queuedTotal() == 1; }));

    // ...so a higher-band C evicts B (Overloaded), ...
    const int fdC = rawConnect(sock.path);
    ASSERT_TRUE(writeFrame(fdC, requestBlob(103, 2)));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(readFrame(fdB, payload, &err), 1) << err;
    std::optional<RunResponse> resp =
        deserializeResponse(payload.data(), payload.size(), &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::Overloaded);
    EXPECT_NE(resp->error.find("shed by a higher-priority arrival"),
              std::string::npos)
        << resp->error;

    // ...and a lowest-band D cannot evict anything: it is shed itself.
    const int fdD = rawConnect(sock.path);
    ASSERT_TRUE(writeFrame(fdD, requestBlob(104, 0)));
    ASSERT_EQ(readFrame(fdD, payload, &err), 1) << err;
    resp = deserializeResponse(payload.data(), payload.size(), &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::Overloaded);
    EXPECT_NE(resp->error.find("admission queue full"),
              std::string::npos)
        << resp->error;

    // A and C still complete.
    for (const int fd : {fdA, fdC}) {
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        resp = deserializeResponse(payload.data(), payload.size(), &err);
        ASSERT_TRUE(resp.has_value()) << err;
        EXPECT_EQ(resp->status, ResponseStatus::Ok) << resp->error;
    }
    EXPECT_GE(server.stats().queueSheds, 2u);
    for (const int fd : {fdA, fdB, fdC, fdD})
        ::close(fd);
    server.stop();
}

TEST(ReactorServe, TcpRoundTrip)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    o.tcpBind = "127.0.0.1:0"; // ephemeral port
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_GT(server.tcpPort(), 0);

    ConnectTarget target;
    target.host = "127.0.0.1";
    target.port = server.tcpPort();
    GscalarClient client(target);
    EXPECT_EQ(client.socketPath().rfind("tcp://127.0.0.1:", 0), 0u);
    EXPECT_TRUE(client.ping(&err)) << err;

    ArchConfig cfg;
    const std::optional<RunResult> served =
        client.run("BT", cfg, &err);
    ASSERT_TRUE(served.has_value()) << err;
    const RunResult direct = runWorkload("BT", cfg);
    EXPECT_EQ(served->ev.cycles, direct.ev.cycles);
    EXPECT_EQ(served->ev.warpInsts, direct.ev.warpInsts);

    const std::optional<DaemonStats> s = client.stats(&err);
    ASSERT_TRUE(s.has_value()) << err;
    EXPECT_EQ(s->requestsServed, 1u);

    // The unix listener serves concurrently with TCP.
    GscalarClient unixClient(sock.path);
    EXPECT_TRUE(unixClient.ping(&err)) << err;
    server.stop();
}

TEST(ReactorServe, RequestPriorityRoundTripsAndValidates)
{
    RunRequest req;
    req.workload = "MM";
    req.priority = 2;
    const std::vector<std::uint8_t> blob = serializeRequest(req);
    std::string err;
    const std::optional<RunRequest> back =
        deserializeRequest(blob.data(), blob.size(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->priority, 2u);

    RunRequest bad;
    bad.workload = "MM";
    bad.priority = kNumPriorities; // one past the highest band
    const std::vector<std::uint8_t> badBlob = serializeRequest(bad);
    EXPECT_FALSE(
        deserializeRequest(badBlob.data(), badBlob.size(), &err)
            .has_value());
    EXPECT_NE(err.find("priority"), std::string::npos) << err;
}

TEST(ReactorServe, ParseConnectTargetStrict)
{
    std::string err;
    auto t = parseConnectTarget("localhost:4242", &err);
    ASSERT_TRUE(t.has_value()) << err;
    EXPECT_EQ(t->host, "localhost");
    EXPECT_EQ(t->port, 4242);

    t = parseConnectTarget("[::1]:9", &err);
    ASSERT_TRUE(t.has_value()) << err;
    EXPECT_EQ(t->host, "::1"); // brackets stripped for getaddrinfo
    EXPECT_EQ(t->port, 9);

    t = parseConnectTarget("127.0.0.1:65535", &err);
    ASSERT_TRUE(t.has_value()) << err;
    EXPECT_EQ(t->port, 65535);

    // Port 0 is a listen-only convention (ephemeral bind).
    EXPECT_FALSE(parseConnectTarget("h:0", &err).has_value());
    t = parseConnectTarget("h:0", &err, /*allowPortZero=*/true);
    ASSERT_TRUE(t.has_value()) << err;
    EXPECT_EQ(t->port, 0);

    // Strict-parse (the --jobs idiom): anything else is an error with
    // the offending spec named, never a silent default.
    for (const char *bad :
         {"", "noport", ":9", "host:", "host:65536", "host:12a",
          "host:-1", "host: 9", "[]:9"}) {
        EXPECT_FALSE(parseConnectTarget(bad, &err).has_value())
            << "accepted '" << bad << "'";
        EXPECT_NE(err.find("connect target"), std::string::npos) << err;
    }
}
