/**
 * @file
 * Conformance suite for the codec registry (compress/codec.hpp):
 * every registered codec must round-trip random and adversarial
 * register files, reject hostile blobs (truncated, bit-flipped,
 * wrong-codec) with an error instead of undefined behaviour, price
 * accesses within the RF geometry envelope, and keep the config
 * fingerprint sensitive to the codec choice. The RRCD chaos test at
 * the end proves the absorption contract: with rf:stuck-array armed,
 * the redirection codec's simulation counters stay byte-identical to
 * the fault-free run while the health counters record the repair.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/codec_id.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "compress/reg_meta.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "harness/runner.hpp"

using namespace gs;
using compress::Codec;

namespace
{

/** Disarm the global injector on scope exit, whatever happens. */
struct DisarmAtExit
{
    ~DisarmAtExit() { faultInjector().disarm(); }
};

/** Adversarial register files the encoders must survive. */
std::vector<std::vector<Word>>
adversarialFiles()
{
    std::vector<std::vector<Word>> files;
    files.push_back(std::vector<Word>(32, 0));          // all zero
    files.push_back(std::vector<Word>(32, 0xFFFFFFFF)); // all ones
    files.push_back(std::vector<Word>(1, 0xDEADBEEF));  // single lane
    std::vector<Word> alternating(32);
    for (unsigned i = 0; i < 32; ++i)
        alternating[i] = (i & 1) ? 0xFFFFFFFF : 0;
    files.push_back(alternating);
    std::vector<Word> ramp(17); // non-power-of-two lane count
    for (unsigned i = 0; i < 17; ++i)
        ramp[i] = 0x80000000u + i;
    files.push_back(ramp);
    return files;
}

} // namespace

TEST(CodecRegistry, EnumeratesEveryIdInStableOrder)
{
    const std::vector<const Codec *> &codecs = compress::allCodecs();
    ASSERT_EQ(codecs.size(), kNumCodecs);
    for (std::size_t i = 0; i < codecs.size(); ++i) {
        EXPECT_EQ(unsigned(codecs[i]->id()), i) << "registry order";
        EXPECT_EQ(&compress::codecFor(codecs[i]->id()), codecs[i]);
        // Every CLI spelling resolves back to the same instance.
        EXPECT_EQ(compress::findCodec(codecs[i]->name()), codecs[i]);
    }
    EXPECT_EQ(compress::findCodec("definitely-not-a-codec"), nullptr);
    EXPECT_EQ(compress::findCodec(""), nullptr);
}

TEST(CodecRegistry, RoundTripsRandomRegisterFiles)
{
    Rng rng(0xC0DEC);
    for (const Codec *codec : compress::allCodecs()) {
        for (unsigned trial = 0; trial < 200; ++trial) {
            const unsigned lanes = 1 + rng.next32() % 32;
            std::vector<Word> values(lanes);
            // Mix compressible and incompressible families.
            const Word base = rng.next32();
            for (unsigned i = 0; i < lanes; ++i) {
                switch (trial % 4) {
                  case 0: values[i] = base; break;
                  case 1: values[i] = base + i * 8; break;
                  case 2: values[i] = (base & 0xFFFF0000) + i; break;
                  default: values[i] = rng.next32(); break;
                }
            }
            const std::vector<std::uint8_t> blob = codec->encode(values);
            std::string err;
            const std::optional<std::vector<Word>> back =
                codec->decode(blob, &err);
            ASSERT_TRUE(back) << codec->name() << " trial " << trial
                              << ": " << err;
            EXPECT_EQ(*back, values) << codec->name();
        }
    }
}

TEST(CodecRegistry, RoundTripsAdversarialRegisterFiles)
{
    for (const Codec *codec : compress::allCodecs()) {
        for (const std::vector<Word> &values : adversarialFiles()) {
            const std::vector<std::uint8_t> blob = codec->encode(values);
            std::string err;
            const std::optional<std::vector<Word>> back =
                codec->decode(blob, &err);
            ASSERT_TRUE(back) << codec->name() << ": " << err;
            EXPECT_EQ(*back, values) << codec->name();
        }
    }
}

TEST(CodecRegistry, DecodeRejectsTruncatedBlobs)
{
    const std::vector<Word> values = {1, 2, 3, 4, 5, 6, 7, 8};
    for (const Codec *codec : compress::allCodecs()) {
        const std::vector<std::uint8_t> blob = codec->encode(values);
        // Every strict prefix must error, never crash or mis-decode.
        for (std::size_t len = 0; len < blob.size(); ++len) {
            std::string err;
            const auto back = codec->decode(
                std::span<const std::uint8_t>(blob.data(), len), &err);
            EXPECT_FALSE(back)
                << codec->name() << " accepted a " << len
                << "-byte prefix of a " << blob.size() << "-byte blob";
            EXPECT_FALSE(err.empty()) << codec->name();
        }
    }
}

TEST(CodecRegistry, DecodeRejectsBitFlippedBlobs)
{
    Rng rng(0xF11F);
    for (const Codec *codec : compress::allCodecs()) {
        std::vector<Word> values(32);
        for (unsigned i = 0; i < 32; ++i)
            values[i] = rng.next32();
        const std::vector<std::uint8_t> blob = codec->encode(values);
        // Flip every bit position in turn: header corruption must be
        // rejected structurally, payload corruption by the checksum.
        for (std::size_t byte = 0; byte < blob.size(); ++byte) {
            for (unsigned bit = 0; bit < 8; ++bit) {
                std::vector<std::uint8_t> bad = blob;
                bad[byte] ^= std::uint8_t(1u << bit);
                std::string err;
                const auto back = codec->decode(bad, &err);
                EXPECT_FALSE(back)
                    << codec->name() << ": flip of byte " << byte
                    << " bit " << bit << " decoded";
                EXPECT_FALSE(err.empty()) << codec->name();
            }
        }
    }
}

TEST(CodecRegistry, DecodeRejectsForeignCodecBlobs)
{
    const std::vector<Word> values(32, 0xC04039C0);
    const std::vector<const Codec *> &codecs = compress::allCodecs();
    for (const Codec *producer : codecs) {
        const std::vector<std::uint8_t> blob = producer->encode(values);
        for (const Codec *consumer : codecs) {
            // The byte-mask family shares one blob format on purpose;
            // only cross-family decodes must be rejected.
            if (consumer->id() == producer->id())
                continue;
            std::string err;
            const auto back = consumer->decode(blob, &err);
            if (back)
                EXPECT_EQ(*back, values)
                    << producer->name() << " -> " << consumer->name();
            else
                EXPECT_FALSE(err.empty());
        }
    }
}

TEST(CodecRegistry, AccessCostsStayWithinGeometry)
{
    const RfGeometry geo;
    const LaneMask full = laneMaskLow(32);
    for (const Codec *codec : compress::allCodecs()) {
        for (unsigned family = 0; family < 4; ++family) {
            Rng rng(family + 1);
            std::vector<Word> v(32);
            for (unsigned i = 0; i < 32; ++i)
                v[i] = family == 0   ? 0xC04039C0
                       : family == 1 ? 0xC04039C0 + i * 8
                       : family == 2 ? 0xC0400000 + i * 1024
                                     : rng.next32();
            RegMeta meta = analyzeWrite(v, full, full, geo.granularity);
            codec->updateMeta(RegMeta{}, meta);
            for (const bool half : {false, true}) {
                const AccessCost rd =
                    codec->readCost(geo, meta, full, half, false);
                const AccessCost wr =
                    codec->writeCost(geo, meta, half, false);
                const unsigned stored =
                    codec->regStoredBytes(geo, meta, half);
                EXPECT_LE(rd.arrays, geo.byteArrays()) << codec->name();
                EXPECT_LE(wr.arrays, geo.byteArrays()) << codec->name();
                EXPECT_LE(rd.bytes, geo.regBytes()) << codec->name();
                EXPECT_LE(wr.bytes, geo.regBytes()) << codec->name();
                EXPECT_GE(stored, 1u) << codec->name();
                EXPECT_LE(stored, geo.regBytes()) << codec->name();
                EXPECT_GT(codec->metadataBitsPerReg(geo, half), 0u)
                    << codec->name();
            }
        }
        // The scalar family must never cost more than the random one.
        std::vector<Word> scalar(32, 0xC04039C0);
        Rng rng(99);
        std::vector<Word> random(32);
        for (unsigned i = 0; i < 32; ++i)
            random[i] = rng.next32();
        RegMeta ms = analyzeWrite(scalar, full, full, geo.granularity);
        RegMeta mr = analyzeWrite(random, full, full, geo.granularity);
        codec->updateMeta(RegMeta{}, ms);
        codec->updateMeta(RegMeta{}, mr);
        EXPECT_LE(codec->regStoredBytes(geo, ms, false),
                  codec->regStoredBytes(geo, mr, false))
            << codec->name();
    }
}

TEST(CodecRegistry, CapsMatchTheSchemes)
{
    const compress::CodecCaps bm =
        compress::codecFor(CodecId::ByteMask).caps();
    EXPECT_TRUE(bm.fullScalar);
    EXPECT_TRUE(bm.halfScalar);
    EXPECT_TRUE(bm.divergentScalar);
    EXPECT_TRUE(bm.scalarFromMeta);
    EXPECT_TRUE(bm.insertsSpecialMoves);
    EXPECT_FALSE(bm.absorbsStuckFaults);

    const compress::CodecCaps bdi =
        compress::codecFor(CodecId::Bdi).caps();
    EXPECT_TRUE(bdi.fullScalar);
    EXPECT_FALSE(bdi.halfScalar) << "BDI has no per-group encodings";
    EXPECT_FALSE(bdi.divergentScalar);

    const compress::CodecCaps sp =
        compress::codecFor(CodecId::StaticProfile).caps();
    EXPECT_FALSE(sp.halfScalar);
    EXPECT_FALSE(sp.simdDispatch);
    EXPECT_EQ(compress::codecFor(CodecId::StaticProfile).activeSimd(),
              SimdLevel::Off)
        << "non-SIMD codecs must report Off regardless of GS_SIMD";

    const compress::CodecCaps rrcd =
        compress::codecFor(CodecId::Rrcd).caps();
    EXPECT_TRUE(rrcd.absorbsStuckFaults);
    EXPECT_TRUE(rrcd.fullScalar);
}

TEST(CodecRegistry, StaticProfileFreezesTheFirstEncoding)
{
    const Codec &sp = compress::codecFor(CodecId::StaticProfile);
    const RfGeometry geo;
    const LaneMask full = laneMaskLow(32);
    const std::vector<Word> scalar(32, 7);
    std::vector<Word> random(32);
    Rng rng(5);
    for (unsigned i = 0; i < 32; ++i)
        random[i] = rng.next32();

    // First write profiles the register as fully compressible...
    RegMeta first = analyzeWrite(scalar, full, full, geo.granularity);
    sp.updateMeta(RegMeta{}, first);
    EXPECT_TRUE(sp.regScalar(first));
    // ...and the frozen profile persists across later writes: a
    // random value cannot be stored compressed any more, but the
    // profile byte itself stays what the first write decided.
    RegMeta second = analyzeWrite(random, full, full, geo.granularity);
    sp.updateMeta(first, second);
    EXPECT_EQ(second.profileEnc, first.profileEnc);
    EXPECT_FALSE(sp.regScalar(second));
}

TEST(CodecRegistry, FingerprintIsSensitiveToTheCodec)
{
    ArchConfig a;
    std::vector<std::uint64_t> prints;
    for (const Codec *codec : compress::allCodecs()) {
        a.codec = codec->id();
        prints.push_back(a.fingerprint());
    }
    for (std::size_t i = 0; i < prints.size(); ++i)
        for (std::size_t j = i + 1; j < prints.size(); ++j)
            EXPECT_NE(prints[i], prints[j])
                << "codecs " << i << " and " << j
                << " share a run-cache key";
}

TEST(CodecRegistry, StuckArrayFaultIsAPureCoordinateFunction)
{
    DisarmAtExit disarm;
    std::string err;
    ASSERT_TRUE(faultInjector().configure("rf:stuck-array:0.5:11", &err))
        << err;
    bool any = false, all = true;
    for (unsigned sm = 0; sm < 4; ++sm)
        for (unsigned bank = 0; bank < 8; ++bank)
            for (unsigned array = 0; array < 16; ++array) {
                const bool first = stuckArrayFault(sm, bank, array);
                EXPECT_EQ(first, stuckArrayFault(sm, bank, array))
                    << "not deterministic at (" << sm << "," << bank
                    << "," << array << ")";
                any |= first;
                all &= first;
            }
    EXPECT_TRUE(any) << "rate 0.5 marked nothing stuck";
    EXPECT_FALSE(all) << "rate 0.5 marked everything stuck";
    faultInjector().disarm();
    EXPECT_FALSE(stuckArrayFault(0, 0, 0)) << "disarmed injector fired";
}

/**
 * The RRCD absorption contract (satellite of the codec framework):
 * with rf:stuck-array armed, the redirection codec soaks the stuck
 * arrays in the compressed registers' spare capacity — the simulated
 * counters and the power report stay byte-identical to the fault-free
 * run, and only the health counters record that repairs happened.
 */
TEST(CodecChaos, RrcdAbsorbsStuckArraysByteIdentically)
{
    DisarmAtExit disarm;
    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;
    cfg.codec = CodecId::Rrcd;

    faultInjector().disarm();
    const RunResult clean = runWorkload("BT", cfg);
    ASSERT_TRUE(clean.ok()) << clean.error;

    const std::uint64_t stuckBefore =
        healthCounters().rfStuckArrays.load();
    const std::uint64_t redirectedBefore =
        healthCounters().rfRedirectedRegisters.load();

    std::string err;
    ASSERT_TRUE(faultInjector().configure("rf:stuck-array:0.4:7", &err))
        << err;
    const RunResult faulty = runWorkload("BT", cfg);
    faultInjector().disarm();
    ASSERT_TRUE(faulty.ok()) << faulty.error;

    // Byte-identical observable result: every event counter and the
    // whole power report match the fault-free run.
#define GS_CHECK_EVENT(member, name, unit, doc)                              \
    EXPECT_EQ(clean.ev.member, faulty.ev.member) << name;
    GS_EVENT_COUNT_FIELDS(GS_CHECK_EVENT)
#undef GS_CHECK_EVENT
    EXPECT_DOUBLE_EQ(clean.power.totalW, faulty.power.totalW);
    EXPECT_DOUBLE_EQ(clean.power.regFileW, faulty.power.regFileW);
    EXPECT_DOUBLE_EQ(clean.power.ipc, faulty.power.ipc);

    // ...while the health counters prove the repair actually ran.
    EXPECT_GT(healthCounters().rfStuckArrays.load(), stuckBefore)
        << "rate 0.4 should mark some arrays stuck";
    EXPECT_GT(healthCounters().rfRedirectedRegisters.load(),
              redirectedBefore)
        << "BT writes compressed registers, some must redirect";
}
