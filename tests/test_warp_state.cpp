#include <gtest/gtest.h>

#include "sim/warp_state.hpp"

namespace gs
{
namespace
{

TEST(WarpState, InitialState)
{
    WarpState w;
    w.init(4, 2, 32, 32);
    EXPECT_EQ(w.fullMask(), laneMaskLow(32));
    EXPECT_EQ(w.warpSize(), 32u);
    EXPECT_FALSE(w.done());
    EXPECT_EQ(w.stack().pc(), 0);
    for (unsigned lane = 0; lane < 32; ++lane)
        EXPECT_EQ(w.regValues(0)[lane], 0u);
    EXPECT_FALSE(w.meta(0).valid);
    EXPECT_EQ(w.pred(0), 0u);
}

TEST(WarpState, PartialWarp)
{
    WarpState w;
    w.init(2, 1, 32, 8);
    EXPECT_EQ(w.fullMask(), 0xffu);
}

TEST(WarpState, RegValueSpansAreDistinct)
{
    WarpState w;
    w.init(3, 1, 32, 32);
    w.regValues(0)[5] = 7;
    w.regValues(2)[5] = 9;
    EXPECT_EQ(w.regValues(0)[5], 7u);
    EXPECT_EQ(w.regValues(1)[5], 0u);
    EXPECT_EQ(w.regValues(2)[5], 9u);
}

TEST(WarpState, PredicateMaskedUpdate)
{
    WarpState w;
    w.init(1, 2, 32, 32);
    w.setPred(0, 0b1111, 0b1111);
    w.setPred(0, 0b0000, 0b0011); // rewrite lanes 0-1 to false
    EXPECT_EQ(w.pred(0), 0b1100u);
    w.setPred(1, ~LaneMask{0}, laneMaskLow(32));
    EXPECT_EQ(w.pred(1), laneMaskLow(32));
}

TEST(WarpState, ReinitResets)
{
    WarpState w;
    w.init(2, 1, 32, 32);
    w.regValues(1)[0] = 5;
    w.setPred(0, 1, 1);
    w.stack().advance(3);
    w.atBarrier = true;

    w.init(2, 1, 32, 32);
    EXPECT_EQ(w.regValues(1)[0], 0u);
    EXPECT_EQ(w.pred(0), 0u);
    EXPECT_EQ(w.stack().pc(), 0);
    EXPECT_FALSE(w.atBarrier);
}

TEST(WarpState, WarpSize64)
{
    WarpState w;
    w.init(1, 1, 64, 64);
    EXPECT_EQ(w.fullMask(), ~LaneMask{0});
    EXPECT_EQ(w.regValues(0).size(), 64u);
}

TEST(WarpStateDeath, OutOfRangeRegisterPanics)
{
    WarpState w;
    w.init(2, 1, 32, 32);
    EXPECT_DEATH(w.regValues(2), "out of range");
    EXPECT_DEATH(w.pred(1), "out of range");
}

} // namespace
} // namespace gs
