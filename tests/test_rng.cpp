#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gs
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a.next64() != b.next64());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ZeroSeedStillWorks)
{
    Rng r(0);
    EXPECT_NE(r.next64(), 0u);
}

} // namespace
} // namespace gs
