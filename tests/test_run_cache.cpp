/**
 * @file
 * Disk run-cache tests (store/run_cache.hpp): store/load round trips in
 * a throwaway directory, corrupt-record rejection (with quarantine),
 * the embedded-config authority check, LRU eviction and fromEnv
 * plumbing.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "fault/health.hpp"
#include "store/run_cache.hpp"
#include "store/serial.hpp"

namespace fs = std::filesystem;
using namespace gs;

namespace
{

/** Fresh mkdtemp directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gscache-XXXXXX").string();
        char *p = ::mkdtemp(tmpl.data());
        EXPECT_NE(p, nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

RunResult
makeResult(const std::string &abbr, std::uint64_t cycles)
{
    RunResult r;
    r.workload = abbr;
    r.mode = ArchMode::GScalarFull;
    r.ev.cycles = cycles;
    r.ev.warpInsts = cycles * 3;
    r.power.totalW = 12.5;
    r.wallSeconds = 0.25;
    return r;
}

/** Live .run records under @p root, excluding the quarantine dir. */
std::vector<fs::path>
recordFiles(const std::string &root)
{
    std::vector<fs::path> out;
    std::error_code ec;
    for (const auto &e : fs::recursive_directory_iterator(root, ec)) {
        if (!e.is_regular_file() || e.path().extension() != ".run")
            continue;
        bool quarantined = false;
        for (const auto &part : e.path())
            if (part == "quarantine")
                quarantined = true;
        if (!quarantined)
            out.push_back(e.path());
    }
    return out;
}

std::size_t
quarantinedFiles(const DiskRunCache &cache)
{
    std::error_code ec;
    std::size_t n = 0;
    for (const auto &e :
         fs::directory_iterator(cache.quarantineDir(), ec))
        if (e.is_regular_file())
            ++n;
    return n;
}

} // namespace

TEST(DiskRunCache, MissThenStoreThenHit)
{
    TempDir tmp;
    DiskRunCache cache(tmp.path);
    ArchConfig cfg;

    EXPECT_FALSE(cache.load("BT", cfg).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);

    const RunResult stored = makeResult("BT", 8618);
    ASSERT_TRUE(cache.store("BT", cfg, stored));

    const std::optional<RunResult> back = cache.load("BT", cfg);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->ev.cycles, stored.ev.cycles);
    EXPECT_EQ(back->workload, stored.workload);
    EXPECT_EQ(back->mode, stored.mode);
    EXPECT_DOUBLE_EQ(back->power.totalW, stored.power.totalW);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(DiskRunCache, SurvivesReopen)
{
    TempDir tmp;
    ArchConfig cfg;
    cfg.mode = ArchMode::AluScalar;
    {
        DiskRunCache cache(tmp.path);
        ASSERT_TRUE(cache.store("HS", cfg, makeResult("HS", 777)));
    }
    DiskRunCache reopened(tmp.path);
    const std::optional<RunResult> back = reopened.load("HS", cfg);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->ev.cycles, 777u);
}

TEST(DiskRunCache, DifferentConfigsMiss)
{
    TempDir tmp;
    DiskRunCache cache(tmp.path);
    ArchConfig a, b;
    b.warpSize = 64;
    ASSERT_TRUE(cache.store("BT", a, makeResult("BT", 1)));
    EXPECT_TRUE(cache.load("BT", a).has_value());
    EXPECT_FALSE(cache.load("BT", b).has_value());
    EXPECT_FALSE(cache.load("HS", a).has_value());
}

TEST(DiskRunCache, CorruptRecordIsRejectedAndQuarantined)
{
    TempDir tmp;
    DiskRunCache cache(tmp.path);
    ArchConfig cfg;
    ASSERT_TRUE(cache.store("BT", cfg, makeResult("BT", 42)));

    const std::vector<fs::path> files = recordFiles(tmp.path);
    ASSERT_EQ(files.size(), 1u);

    // Flip one payload byte: the checksum must catch it, the load must
    // miss, and the poisoned file must move to quarantine/ (kept for
    // post-mortems, out of the lookup path).
    {
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(12);
        char c = 0;
        f.seekg(12);
        f.get(c);
        f.seekp(12);
        f.put(char(c ^ 0x40));
    }
    EXPECT_FALSE(cache.load("BT", cfg).has_value());
    EXPECT_GE(cache.stats().rejects, 1u);
    EXPECT_GE(cache.stats().quarantined, 1u);
    EXPECT_TRUE(recordFiles(tmp.path).empty());
    EXPECT_EQ(quarantinedFiles(cache), 1u);

    // A clean re-store repairs the entry; the quarantined copy stays.
    ASSERT_TRUE(cache.store("BT", cfg, makeResult("BT", 42)));
    EXPECT_TRUE(cache.load("BT", cfg).has_value());
    EXPECT_EQ(quarantinedFiles(cache), 1u);
}

TEST(DiskRunCache, TruncatedRecordIsRejected)
{
    TempDir tmp;
    DiskRunCache cache(tmp.path);
    ArchConfig cfg;
    ASSERT_TRUE(cache.store("BT", cfg, makeResult("BT", 42)));
    const std::vector<fs::path> files = recordFiles(tmp.path);
    ASSERT_EQ(files.size(), 1u);
    fs::resize_file(files[0], fs::file_size(files[0]) / 2);
    EXPECT_FALSE(cache.load("BT", cfg).has_value());
    EXPECT_GE(cache.stats().quarantined, 1u);
    EXPECT_TRUE(recordFiles(tmp.path).empty());
    EXPECT_EQ(quarantinedFiles(cache), 1u);
}

TEST(DiskRunCache, EmbeddedConfigIsAuthoritative)
{
    // Simulate a fingerprint collision: a record stored for config A
    // copied onto the path for config B. The load must notice the
    // embedded config differs and reject rather than return A's result.
    TempDir tmp;
    DiskRunCache cache(tmp.path);
    ArchConfig a, b;
    b.seed = 999;
    ASSERT_TRUE(cache.store("BT", a, makeResult("BT", 42)));
    ASSERT_TRUE(cache.store("BT", b, makeResult("BT", 43)));

    std::vector<fs::path> files = recordFiles(tmp.path);
    ASSERT_EQ(files.size(), 2u);
    // Overwrite each record with the other's bytes; both loads must now
    // reject (the embedded config no longer matches the request).
    fs::copy_file(files[0], files[1],
                  fs::copy_options::overwrite_existing);
    const std::optional<RunResult> ra = cache.load("BT", a);
    const std::optional<RunResult> rb = cache.load("BT", b);
    // Exactly one of the two paths now holds the wrong config's record.
    EXPECT_TRUE(!ra.has_value() || !rb.has_value());
    EXPECT_GE(cache.stats().rejects, 1u);
}

TEST(DiskRunCache, LruEvictionKeepsRecentRecords)
{
    TempDir tmp;
    // Records are a few hundred bytes; cap to roughly three of them.
    DiskRunCache cache(tmp.path, 3 * 600);
    ArchConfig cfg;
    const char *abbrs[] = {"AA", "BB", "CC", "DD", "EE", "FF"};
    for (const char *a : abbrs) {
        ASSERT_TRUE(cache.store(a, cfg, makeResult(a, 1)));
        // Distinct mtimes so LRU order is well defined even on
        // coarse-grained filesystems.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GE(cache.stats().evictions, 1u);
    const std::size_t kept = recordFiles(tmp.path).size();
    EXPECT_LT(kept, 6u);
    EXPECT_GE(kept, 1u);
    // The newest record must have survived the sweep.
    EXPECT_TRUE(cache.load("FF", cfg).has_value());
    // The oldest must be the first casualty.
    EXPECT_FALSE(cache.load("AA", cfg).has_value());
}

TEST(DiskRunCache, QuarantineDirIsLruCapped)
{
    TempDir tmp;
    ArchConfig cfg;
    // Store with no size cap so the live records all land...
    {
        DiskRunCache cache(tmp.path, 0);
        for (const char *a : {"AA", "BB", "CC", "DD"})
            ASSERT_TRUE(cache.store(a, cfg, makeResult(a, 1)));
    }
    // ...then rot every one of them on disk.
    const std::vector<fs::path> files = recordFiles(tmp.path);
    ASSERT_EQ(files.size(), 4u);
    for (const fs::path &p : files) {
        std::fstream f(p,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(12);
        char c = 0;
        f.seekg(12);
        f.get(c);
        f.seekp(12);
        f.put(char(c ^ 0x40));
    }

    healthCounters().reset();
    // Reopen with a cap smaller than the pile: each rejected load
    // quarantines its record, and the quarantine sweep keeps the
    // post-mortem directory LRU-bounded instead of growing without
    // bound under a flaky disk.
    DiskRunCache capped(tmp.path, 600);
    for (const char *a : {"AA", "BB", "CC", "DD"}) {
        EXPECT_FALSE(capped.load(a, cfg).has_value());
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(capped.stats().quarantined, 4u);
    EXPECT_GE(capped.stats().quarantineEvictions, 1u);
    EXPECT_LT(quarantinedFiles(capped), 4u);
    EXPECT_GE(healthCounters().snapshot().quarantineEvictions, 1u);
    healthCounters().reset();
}

TEST(DiskRunCache, UnlimitedSizeNeverEvicts)
{
    TempDir tmp;
    DiskRunCache cache(tmp.path, 0);
    ArchConfig cfg;
    for (const char *a : {"AA", "BB", "CC", "DD"})
        ASSERT_TRUE(cache.store(a, cfg, makeResult(a, 1)));
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(recordFiles(tmp.path).size(), 4u);
}

TEST(DiskRunCache, FromEnvHonoursGsCacheDir)
{
    TempDir tmp;
    ::setenv("GS_CACHE_DIR", tmp.path.c_str(), 1);
    std::unique_ptr<DiskRunCache> cache = DiskRunCache::fromEnv();
    ::unsetenv("GS_CACHE_DIR");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->dir(), tmp.path);
}

TEST(DiskRunCache, FromEnvDefaultsToDisabled)
{
    ::unsetenv("GS_CACHE_DIR");
    EXPECT_EQ(DiskRunCache::fromEnv(false), nullptr);
    // Opt-in (--cache) without GS_CACHE_DIR lands at the default dir.
    EXPECT_FALSE(DiskRunCache::defaultCacheDir().empty());
}
