/**
 * @file
 * Sweep subsystem tests (src/sweep): manifest parsing/validation and
 * the content-addressed campaign hash, deterministic odometer
 * expansion, the knob vocabulary, the crash-safe journal (round trip,
 * torn tails, bit rot, foreign records, compaction), campaign-level
 * chaos for every sweep:* fault site, and the acceptance path through
 * the real binary: SIGKILL mid-campaign, --resume, byte-identical
 * aggregate with zero completed points recomputed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "gen/generator.hpp"
#include "sweep/campaign.hpp"
#include "sweep/journal.hpp"
#include "sweep/manifest.hpp"

namespace fs = std::filesystem;
using namespace gs;

namespace
{

/** Fresh mkdtemp directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gsweep-XXXXXX").string();
        char *p = ::mkdtemp(tmpl.data());
        EXPECT_NE(p, nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** Disarm the global injector on scope exit, whatever happens. */
struct DisarmAtExit
{
    ~DisarmAtExit() { faultInjector().disarm(); }
};

void
arm(const std::string &spec)
{
    std::string err;
    ASSERT_TRUE(faultInjector().configure(spec, &err)) << err;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Run the real CLI with an environment prefix, capturing stdout and
 *  stderr into files; returns the raw wait status. */
int
runCli(const std::string &envPrefix, const std::string &args,
       const std::string &outFile, const std::string &errFile)
{
    const std::string cmd = envPrefix + " '" GS_CLI_PATH "' " + args +
                            " > '" + outFile + "' 2> '" + errFile + "'";
    return std::system(cmd.c_str());
}

/** The 2x2 campaign every test sweeps: small and fast, but covering
 *  two axes and both workload and architecture knobs. */
const char *kManifestText = R"({
  "schema": "gscalar.sweep.v1",
  "name": "t2x2",
  "base": {"seed": 1},
  "axes": [
    {"knob": "workload", "values": ["BT", "BP"]},
    {"knob": "mode", "values": ["baseline", "gscalar"]}
  ]
})";

SweepManifest
parseOrDie(const std::string &text)
{
    std::string err;
    const std::optional<SweepManifest> m =
        SweepManifest::parse(text, &err);
    EXPECT_TRUE(m.has_value()) << err;
    return *m;
}

std::vector<SweepPoint>
expandOrDie(const SweepManifest &m)
{
    std::string err;
    const std::optional<std::vector<SweepPoint>> points =
        m.expand(&err);
    EXPECT_TRUE(points.has_value()) << err;
    return *points;
}

/** A synthetic result for journal tests (no simulation needed). */
RunResult
makeResult(const SweepPoint &p, std::uint64_t cycles)
{
    RunResult r;
    r.workload = p.workload;
    r.mode = p.cfg.mode;
    r.ev.cycles = cycles;
    r.ev.warpInsts = cycles * 2;
    r.power.totalW = 30.0;
    return r;
}

} // namespace

// ---- manifest -----------------------------------------------------------

TEST(SweepManifest, ValidManifestParsesAndHashes)
{
    const SweepManifest m = parseOrDie(kManifestText);
    EXPECT_EQ(m.name(), "t2x2");
    ASSERT_EQ(m.base().size(), 1u);
    EXPECT_EQ(m.base()[0].first, "seed");
    ASSERT_EQ(m.axes().size(), 2u);
    EXPECT_EQ(m.axes()[0].knob, "workload");
    EXPECT_EQ(m.axes()[1].values.size(), 2u);
    EXPECT_EQ(m.pointCount(), 4u);
    EXPECT_EQ(m.campaignId().size(), 16u);

    // The hash is content-addressed: whitespace and member order do
    // not matter, any semantic change does.
    const SweepManifest reordered = parseOrDie(
        "{\"axes\":[{\"values\":[\"BT\",\"BP\"],\"knob\":\"workload\"},"
        "{\"knob\":\"mode\",\"values\":[\"baseline\",\"gscalar\"]}],"
        "\"base\":{\"seed\":1},\"name\":\"t2x2\","
        "\"schema\":\"gscalar.sweep.v1\"}");
    EXPECT_EQ(reordered.campaignHash(), m.campaignHash());

    std::string edited = kManifestText;
    const std::size_t at = edited.find("\"seed\": 1");
    ASSERT_NE(at, std::string::npos);
    edited.replace(at, 9, "\"seed\": 2");
    EXPECT_NE(parseOrDie(edited).campaignHash(), m.campaignHash());
}

TEST(SweepManifest, MalformedManifestsAreRejected)
{
    const char *bad[] = {
        // not JSON at all / trailing garbage
        "",
        "nonsense",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]} trailing",
        // wrong or missing schema
        "{\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        "{\"schema\":\"gscalar.sweep.v2\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        // bad campaign names
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a b\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        // unknown top-level key
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"extra\":1,"
        "\"axes\":[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        // unknown knob / bad values
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"bogus\",\"values\":[\"1\"]}]}",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"NOPE\"]}]}",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\","
        "\"base\":{\"mode\":\"bogus\"},\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        // duplicate knob across base and axes; duplicate axis value
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\","
        "\"base\":{\"warp\":32},\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]},"
        "{\"knob\":\"warp\",\"values\":[\"16\",\"32\"]}]}",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\",\"BT\"]}]}",
        // empty axis; workload neither pinned nor swept
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[]}]}",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\",\"axes\":"
        "[{\"knob\":\"warp\",\"values\":[\"16\",\"32\"]}]}",
        // numbers must be integers; duplicate JSON keys are hostile
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\","
        "\"base\":{\"seed\":1.5},\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
        "{\"schema\":\"gscalar.sweep.v1\",\"name\":\"a\","
        "\"name\":\"b\",\"axes\":"
        "[{\"knob\":\"workload\",\"values\":[\"BT\"]}]}",
    };
    for (const char *text : bad) {
        std::string err;
        EXPECT_FALSE(SweepManifest::parse(text, &err).has_value())
            << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(SweepManifest, ExpansionIsAnOdometerOverTheAxes)
{
    const SweepManifest m = parseOrDie(kManifestText);
    const std::vector<SweepPoint> points = expandOrDie(m);
    ASSERT_EQ(points.size(), 4u);

    // Declaration order, last axis fastest.
    EXPECT_EQ(points[0].workload, "BT");
    EXPECT_EQ(points[0].cfg.mode, ArchMode::Baseline);
    EXPECT_EQ(points[1].workload, "BT");
    EXPECT_EQ(points[1].cfg.mode, ArchMode::GScalarFull);
    EXPECT_EQ(points[2].workload, "BP");
    EXPECT_EQ(points[2].cfg.mode, ArchMode::Baseline);
    EXPECT_EQ(points[3].workload, "BP");
    EXPECT_EQ(points[3].cfg.mode, ArchMode::GScalarFull);
    EXPECT_EQ(points[3].index, 3u);
    EXPECT_EQ(points[0].label(), "workload=BT mode=baseline");

    // The base knob reached every point; fingerprints are distinct and
    // reproducible (a second expansion is identical).
    const std::vector<SweepPoint> again = expandOrDie(m);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].cfg.seed, 1u);
        EXPECT_EQ(points[i].fingerprint(), again[i].fingerprint());
        for (std::size_t j = i + 1; j < points.size(); ++j)
            EXPECT_NE(points[i].fingerprint(),
                      points[j].fingerprint());
    }
}

TEST(SweepManifest, KnobVocabularyAppliesAndValidates)
{
    registerGenWorkloads(); // "gen:..." sweep values must resolve
    ArchConfig cfg;
    std::string w;
    EXPECT_TRUE(applySweepKnob(cfg, w, "workload", "BT").empty());
    EXPECT_EQ(w, "BT");
    EXPECT_TRUE(
        applySweepKnob(cfg, w, "workload", "gen:seed=7").empty());
    EXPECT_TRUE(applySweepKnob(cfg, w, "mode", "alu-scalar").empty());
    EXPECT_EQ(cfg.mode, ArchMode::AluScalar);
    EXPECT_TRUE(applySweepKnob(cfg, w, "codec", "bdi").empty());
    EXPECT_TRUE(applySweepKnob(cfg, w, "warp", "64").empty());
    EXPECT_EQ(cfg.warpSize, 64u);
    EXPECT_TRUE(applySweepKnob(cfg, w, "sms", "4").empty());
    EXPECT_TRUE(applySweepKnob(cfg, w, "seed", "42").empty());
    EXPECT_TRUE(
        applySweepKnob(cfg, w, "check-granularity", "8").empty());
    EXPECT_TRUE(applySweepKnob(cfg, w, "scalar-banks", "2").empty());
    EXPECT_TRUE(applySweepKnob(cfg, w, "half-reg", "false").empty());
    EXPECT_FALSE(cfg.halfRegisterCompression);
    EXPECT_TRUE(applySweepKnob(cfg, w, "smov", "true").empty());
    EXPECT_TRUE(
        applySweepKnob(cfg, w, "compiler-smov", "false").empty());
    EXPECT_TRUE(
        applySweepKnob(cfg, w, "scalar-occupancy", "true").empty());
    EXPECT_TRUE(
        applySweepKnob(cfg, w, "max-cycles", "100000").empty());
    EXPECT_EQ(cfg.maxCycles, 100000u);

    // Bad values name the knob; unknown knobs list the vocabulary.
    EXPECT_NE(applySweepKnob(cfg, w, "warp", "0").find("warp"),
              std::string::npos);
    EXPECT_FALSE(applySweepKnob(cfg, w, "warp", "2000").empty());
    EXPECT_FALSE(applySweepKnob(cfg, w, "mode", "bogus").empty());
    EXPECT_FALSE(applySweepKnob(cfg, w, "codec", "bogus").empty());
    EXPECT_FALSE(applySweepKnob(cfg, w, "half-reg", "yes").empty());
    EXPECT_FALSE(applySweepKnob(cfg, w, "seed", "-1").empty());
    EXPECT_NE(
        applySweepKnob(cfg, w, "nope", "1").find("unknown sweep knob"),
        std::string::npos);
}

// ---- journal ------------------------------------------------------------

TEST(SweepJournal, AppendLoadRoundTrip)
{
    TempDir tmp;
    const SweepManifest m = parseOrDie(kManifestText);
    const std::vector<SweepPoint> points = expandOrDie(m);

    {
        SweepJournal journal(tmp.path);
        for (std::size_t i = 0; i < 3; ++i)
            ASSERT_TRUE(
                journal.append(points[i], makeResult(points[i], 100 + i)));
        EXPECT_EQ(journal.stats().appended, 3u);
    }

    SweepJournal journal(tmp.path);
    const auto replayed = journal.load(points);
    ASSERT_EQ(replayed.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(replayed.count(i));
        EXPECT_EQ(replayed.at(i).ev.cycles, 100u + i);
        EXPECT_EQ(replayed.at(i).workload, points[i].workload);
    }
    const SweepJournalStats stats = journal.stats();
    EXPECT_EQ(stats.replayed, 3u);
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.compactions, 0u);
    EXPECT_FALSE(fs::exists(journal.quarantinePath()));
}

TEST(SweepJournal, TornTailIsQuarantinedAndCompacted)
{
    TempDir tmp;
    healthCounters().reset();
    const SweepManifest m = parseOrDie(kManifestText);
    const std::vector<SweepPoint> points = expandOrDie(m);

    {
        SweepJournal journal(tmp.path);
        for (std::size_t i = 0; i < 2; ++i)
            ASSERT_TRUE(
                journal.append(points[i], makeResult(points[i], 7)));
    }
    // A crash mid-write leaves a torn final line with no newline.
    {
        std::ofstream f((fs::path(tmp.path) / "journal.jsonl").string(),
                        std::ios::binary | std::ios::app);
        f << "{\"v\":1,\"point\":2,\"fp\":\"0123";
    }

    SweepJournal journal(tmp.path);
    const auto replayed = journal.load(points);
    EXPECT_EQ(replayed.size(), 2u);
    EXPECT_EQ(journal.stats().quarantined, 1u);
    EXPECT_EQ(journal.stats().compactions, 1u);
    EXPECT_TRUE(fs::exists(journal.quarantinePath()));
    EXPECT_GE(healthCounters().snapshot().sweepJournalRecoveries, 1u);

    // Compaction repaired the file in place: a fresh load is clean.
    SweepJournal again(tmp.path);
    EXPECT_EQ(again.load(points).size(), 2u);
    EXPECT_EQ(again.stats().quarantined, 0u);
    EXPECT_EQ(again.stats().compactions, 0u);
    healthCounters().reset();
}

TEST(SweepJournal, BitRotAndForeignRecordsAreQuarantined)
{
    TempDir tmp;
    const SweepManifest m = parseOrDie(kManifestText);
    const std::vector<SweepPoint> points = expandOrDie(m);

    {
        SweepJournal journal(tmp.path);
        ASSERT_TRUE(journal.append(points[0], makeResult(points[0], 1)));
        ASSERT_TRUE(journal.append(points[1], makeResult(points[1], 2)));
    }
    // Flip one byte in the middle of the first record.
    const std::string path =
        (fs::path(tmp.path) / "journal.jsonl").string();
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(40);
        char c = 0;
        f.seekg(40);
        f.get(c);
        f.seekp(40);
        f.put(char(c ^ 0x04));
    }
    {
        SweepJournal journal(tmp.path);
        const auto replayed = journal.load(points);
        EXPECT_EQ(replayed.size(), 1u);
        EXPECT_FALSE(replayed.count(0));
        EXPECT_EQ(journal.stats().quarantined, 1u);
    }

    // A record journaled for a *different* campaign configuration must
    // never replay: same indices, different fingerprints.
    std::string edited = kManifestText;
    const std::size_t at = edited.find("\"seed\": 1");
    ASSERT_NE(at, std::string::npos);
    edited.replace(at, 9, "\"seed\": 9");
    const std::vector<SweepPoint> foreign =
        expandOrDie(parseOrDie(edited));
    SweepJournal journal(tmp.path);
    EXPECT_TRUE(journal.load(foreign).empty());
    EXPECT_GE(journal.stats().quarantined, 1u);
}

TEST(SweepJournal, InjectedTornWriteAndBitFlipAreCaughtOnLoad)
{
    const SweepManifest m = parseOrDie(kManifestText);
    const std::vector<SweepPoint> points = expandOrDie(m);

    DisarmAtExit cleanup;
    for (const char *kind : {"journal-torn-write", "journal-bit-flip"}) {
        TempDir tmp;
        arm(std::string("sweep:") + kind + ":1");
        {
            SweepJournal journal(tmp.path);
            ASSERT_TRUE(
                journal.append(points[0], makeResult(points[0], 5)));
        }
        faultInjector().disarm();
        SweepJournal journal(tmp.path);
        EXPECT_TRUE(journal.load(points).empty()) << kind;
        EXPECT_EQ(journal.stats().quarantined, 1u) << kind;
        EXPECT_EQ(journal.stats().compactions, 1u) << kind;
    }
}

// ---- campaign runner ----------------------------------------------------

TEST(SweepCampaign, RunsEveryPointAndAggregatesDeterministically)
{
    TempDir tmp;
    const SweepManifest m = parseOrDie(kManifestText);
    SweepOptions opts;
    opts.sweepDir = tmp.path;

    const SweepOutcome outcome = runSweepCampaign(m, opts);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.points, 4u);
    EXPECT_EQ(outcome.computed, 4u);
    EXPECT_EQ(outcome.replayed, 0u);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_NE(outcome.aggregate.text.find("Sweep t2x2: 4 points"),
              std::string::npos);
    EXPECT_EQ(outcome.aggregate.runs.size(), 4u);

    // The campaign directory is content-addressed and fully published.
    EXPECT_EQ(fs::path(outcome.campaignDir).filename().string(),
              m.campaignId());
    EXPECT_TRUE(fs::exists(fs::path(outcome.campaignDir) /
                           "manifest.json"));
    EXPECT_TRUE(
        fs::exists(fs::path(outcome.campaignDir) / "journal.jsonl"));
    const std::string results = slurp(
        (fs::path(outcome.campaignDir) / "results.jsonl").string());
    EXPECT_EQ(std::count(results.begin(), results.end(), '\n'), 4);
    EXPECT_NE(results.find("\"schema\":\"gscalar.bench.v1\""),
              std::string::npos);

    // --resume with a complete journal replays everything and still
    // renders the identical aggregate.
    SweepOptions resume = opts;
    resume.resume = true;
    const SweepOutcome replayed = runSweepCampaign(m, resume);
    EXPECT_EQ(replayed.replayed, 4u);
    EXPECT_EQ(replayed.computed, 0u);
    EXPECT_EQ(replayed.aggregate.text, outcome.aggregate.text);
    healthCounters().reset();
}

TEST(SweepCampaign, JournalFaultsNeverChangeTheAggregate)
{
    TempDir cleanDir;
    const SweepManifest m = parseOrDie(kManifestText);
    SweepOptions cleanOpts;
    cleanOpts.sweepDir = cleanDir.path;
    const SweepOutcome clean = runSweepCampaign(m, cleanOpts);
    ASSERT_TRUE(clean.ok());

    DisarmAtExit cleanup;
    for (const char *kind : {"journal-torn-write", "journal-bit-flip"}) {
        TempDir tmp;
        healthCounters().reset();
        SweepOptions opts;
        opts.sweepDir = tmp.path;

        // Every journal append is corrupted, yet the live aggregate is
        // untouched (the journal only feeds --resume).
        arm(std::string("sweep:") + kind + ":1");
        const SweepOutcome faulted = runSweepCampaign(m, opts);
        EXPECT_EQ(faulted.aggregate.text, clean.aggregate.text) << kind;
        faultInjector().disarm();

        // Resume finds only corrupt records: all quarantined, every
        // point recomputed, byte-identical output — recovery counted.
        SweepOptions resume = opts;
        resume.resume = true;
        const SweepOutcome recovered = runSweepCampaign(m, resume);
        EXPECT_EQ(recovered.aggregate.text, clean.aggregate.text)
            << kind;
        EXPECT_EQ(recovered.replayed, 0u) << kind;
        EXPECT_EQ(recovered.computed, 4u) << kind;
        EXPECT_GE(healthCounters().snapshot().sweepJournalRecoveries,
                  4u)
            << kind;
    }
    healthCounters().reset();
}

TEST(SweepCampaign, DaemonLostDegradesToInProcessExecution)
{
    TempDir cleanDir;
    const SweepManifest m = parseOrDie(kManifestText);
    SweepOptions cleanOpts;
    cleanOpts.sweepDir = cleanDir.path;
    const SweepOutcome clean = runSweepCampaign(m, cleanOpts);
    ASSERT_TRUE(clean.ok());

    DisarmAtExit cleanup;
    healthCounters().reset();
    TempDir tmp;
    SweepOptions opts;
    opts.sweepDir = tmp.path;
    opts.socketPath =
        (fs::path(tmp.path) / "no-such-daemon.sock").string();

    // Every daemon submit dies: the ladder degrades after
    // kDaemonDegradeThreshold consecutive failures and every point is
    // computed in process — a lost fleet never fails a campaign.
    arm("sweep:daemon-lost:1");
    const SweepOutcome outcome = runSweepCampaign(m, opts);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.daemonFallbacks, 4u);
    EXPECT_EQ(outcome.aggregate.text, clean.aggregate.text);
    const HealthCounts h = healthCounters().snapshot();
    EXPECT_GE(h.sweepDaemonFallbacks, 4u);
    EXPECT_GE(h.sweepPointRetries, 1u);
    healthCounters().reset();
}

// ---- acceptance: SIGKILL mid-campaign through the real binary -----------

TEST(SweepCli, PointCrashThenResumeIsByteIdenticalWithNoRecompute)
{
    TempDir tmp;
    const std::string manifest = tmp.path + "/m.json";
    {
        std::ofstream f(manifest);
        f << kManifestText;
    }
    const std::string cleanOut = tmp.path + "/clean.out";
    const std::string crashOut = tmp.path + "/crash.out";
    const std::string resumeOut = tmp.path + "/resume.out";
    const std::string errFile = tmp.path + "/err";
    const std::string resumeErr = tmp.path + "/resume.err";
    const std::string args = "sweep '" + manifest + "' -j 2";

    ASSERT_EQ(runCli("GS_SWEEP_DIR='" + tmp.path + "/clean'", args,
                     cleanOut, errFile),
              0)
        << slurp(errFile);
    const std::string clean = slurp(cleanOut);
    ASSERT_FALSE(clean.empty());

    // SIGKILL semantics right after the first point commits: the
    // process dies with _Exit(137), no flushing, exactly one journaled
    // point behind.
    const std::string dir = "GS_SWEEP_DIR='" + tmp.path + "/crash'";
    const int status =
        runCli(dir + " GS_FAULT=sweep:point-crash:1:0", args, crashOut,
               errFile);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 137);
    EXPECT_NE(slurp(errFile).find("injected point-crash"),
              std::string::npos);

    // --resume replays the journaled point and recomputes only the
    // rest: byte-identical stdout, and the engine line proves zero
    // completed points were re-simulated.
    ASSERT_EQ(runCli(dir, args + " --resume", resumeOut, resumeErr), 0)
        << slurp(resumeErr);
    EXPECT_EQ(slurp(resumeOut), clean);
    const std::string err = slurp(resumeErr);
    EXPECT_NE(err.find("replayed=1 computed=3 failed=0"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("engine: 3 simulations"), std::string::npos)
        << err;
    EXPECT_NE(err.find("sweep_resumed_points 1"), std::string::npos)
        << err;
}

TEST(SweepCli, ExpandIsADryRun)
{
    TempDir tmp;
    const std::string manifest = tmp.path + "/m.json";
    {
        std::ofstream f(manifest);
        f << kManifestText;
    }
    const std::string out = tmp.path + "/out";
    const std::string err = tmp.path + "/err";
    const std::string sweepDir = tmp.path + "/sweeps";
    ASSERT_EQ(runCli("GS_SWEEP_DIR='" + sweepDir + "'",
                     "sweep '" + manifest + "' --expand", out, err),
              0)
        << slurp(err);
    const std::string text = slurp(out);
    EXPECT_NE(text.find("4 point(s)"), std::string::npos);
    EXPECT_NE(text.find("workload=BP mode=gscalar"), std::string::npos);
    // A dry run never creates campaign state.
    EXPECT_FALSE(fs::exists(sweepDir));

    // Malformed manifests and unknown flags fail fast.
    EXPECT_NE(runCli("", "sweep '" + manifest + "' --bogus", out, err),
              0);
    const std::string badManifest = tmp.path + "/bad.json";
    {
        std::ofstream f(badManifest);
        f << "{\"schema\":\"nope\"}";
    }
    EXPECT_NE(runCli("", "sweep '" + badManifest + "'", out, err), 0);
    EXPECT_NE(runCli("", "sweep", out, err), 0);
}
