#include <gtest/gtest.h>

#include "common/log.hpp"
#include "harness/runner.hpp"
#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"
#include "workloads/data_gen.hpp"

namespace gs
{
namespace
{

Kernel
incrementKernel(Word delta)
{
    KernelBuilder kb("inc");
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg addr = kb.reg();
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, Word(layout::kArrayA));
    const Reg v = kb.reg();
    kb.ldg(v, addr);
    kb.iaddi(v, v, delta);
    kb.stg(addr, v);
    return kb.build();
}

Workload
twoLaunchWorkload()
{
    Workload w;
    w.name = "2L";
    w.fullName = "two-launch";
    w.suite = "test";
    w.setup = [](GlobalMemory &mem, std::uint64_t) {
        mem.fillWords(layout::kArrayA, uniformWords(32, 100));
    };
    w.launches.push_back({incrementKernel(1), {1, 32}});
    w.launches.push_back({incrementKernel(10), {1, 32}});
    return w;
}

TEST(Runner, SequentialLaunchesAccumulate)
{
    setQuiet(true);
    ArchConfig cfg;
    cfg.numSms = 1;
    const Workload two = twoLaunchWorkload();
    const RunResult r2 = runWorkload(two, cfg);

    Workload one = twoLaunchWorkload();
    one.launches.pop_back();
    const RunResult r1 = runWorkload(one, cfg);

    // Cycles of sequential kernels add up; counters accumulate.
    EXPECT_GT(r2.ev.cycles, r1.ev.cycles);
    EXPECT_EQ(r2.ev.warpInsts, 2 * r1.ev.warpInsts);
}

TEST(Runner, SetupRunsOncePerRun)
{
    setQuiet(true);
    ArchConfig cfg;
    cfg.numSms = 1;
    // Second launch sees the first launch's +1: values end at 111 —
    // which would be wrong if setup re-ran between launches.
    Gpu gpu(cfg);
    const Workload w = twoLaunchWorkload();
    w.setup(gpu.memory(), 1);
    for (const auto &l : w.launches)
        gpu.launch(l.kernel, l.dims);
    EXPECT_EQ(gpu.memory().readWord(layout::kArrayA), 111u);
}

TEST(Runner, PowerReportAttached)
{
    setQuiet(true);
    ArchConfig cfg;
    cfg.numSms = 1;
    const RunResult r = runWorkload(twoLaunchWorkload(), cfg);
    EXPECT_GT(r.power.totalW, 0.0);
    EXPECT_GT(r.power.seconds, 0.0);
}

} // namespace
} // namespace gs
