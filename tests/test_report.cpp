#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "harness/report.hpp"

namespace gs
{
namespace
{

RunResult
sampleRun()
{
    setQuiet(true);
    ArchConfig cfg;
    cfg.numSms = 2;
    cfg.mode = ArchMode::GScalarFull;
    return runWorkload("HS", cfg);
}

TEST(Report, FieldEnumerationStableAndComplete)
{
    const auto f = eventFields(EventCounts{});
    ASSERT_GT(f.size(), 40u);
    // Spot-check presence and order stability of key fields.
    EXPECT_EQ(f[0].first, "cycles");
    bool has_ipc = false, has_smov = false, has_affine = false;
    for (const auto &[name, v] : f) {
        has_ipc |= name == "ipc";
        has_smov |= name == "special_move_insts";
        has_affine |= name == "affine_writes";
    }
    EXPECT_TRUE(has_ipc);
    EXPECT_TRUE(has_smov);
    EXPECT_TRUE(has_affine);
}

TEST(Report, CsvHeaderMatchesRowArity)
{
    const RunResult r = sampleRun();
    const std::string header = csvHeader();
    const std::string row = csvRow(r);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(header.substr(0, 13), "workload,mode");
    EXPECT_EQ(row.substr(0, 2), "HS");
}

TEST(Report, ToCsvHasHeaderPlusRows)
{
    const RunResult r = sampleRun();
    const std::string csv = toCsv({r, r});
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Report, JsonIsWellFormedEnough)
{
    const RunResult r = sampleRun();
    const std::string j = toJson(r);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j[j.size() - 2], '}');
    EXPECT_NE(j.find("\"workload\": \"HS\""), std::string::npos);
    EXPECT_NE(j.find("\"mode\": \"gscalar\""), std::string::npos);
    EXPECT_NE(j.find("\"cycles\": "), std::string::npos);
    // Balanced quotes.
    EXPECT_EQ(std::count(j.begin(), j.end(), '"') % 2, 0);
}

TEST(Report, PowerFieldsSumConsistent)
{
    const RunResult r = sampleRun();
    const auto pf = powerFields(r.power);
    double total = 0, reported = 0;
    for (const auto &[name, v] : pf) {
        if (name == "power_total_w")
            reported = v;
        else if (name != "ipc_per_watt" && name != "power_sfu_w")
            total += v;
    }
    EXPECT_NEAR(total, reported, 1e-9);
}

} // namespace
} // namespace gs
