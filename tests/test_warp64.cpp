/**
 * @file
 * Warp-size independence: our kernels use no warp-level intrinsics, so
 * functional results must be identical at warp sizes 32 and 64 (Fig. 10
 * runs the whole suite at 64); only timing and classification change.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "harness/runner.hpp"
#include "sim/gpu.hpp"

namespace gs
{
namespace
{

/** Run one benchmark and return a slice of its output array. */
std::vector<Word>
outputSlice(const std::string &bench, unsigned warp_size)
{
    setQuiet(true);
    ArchConfig cfg;
    cfg.numSms = 4;
    cfg.warpSize = warp_size;

    const Workload w = makeWorkload(bench);
    Gpu gpu(cfg);
    if (w.setup)
        w.setup(gpu.memory(), cfg.seed);
    for (const WorkloadLaunch &l : w.launches)
        gpu.launch(l.kernel, l.dims);
    // 0xa00000 is the shared output base (layout::kOutput).
    return gpu.memory().readWords(0xa00000, 2048);
}

class Warp64Equivalence : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Warp64Equivalence, FunctionalResultsMatch)
{
    const std::string bench = GetParam();
    EXPECT_EQ(outputSlice(bench, 32), outputSlice(bench, 64)) << bench;
}

INSTANTIATE_TEST_SUITE_P(SelectedBenchmarks, Warp64Equivalence,
                         ::testing::Values("BP", "HS", "MM", "SAD",
                                           "ACF", "MQ"));

TEST(Warp64, ClassificationShiftsToQuarterScalar)
{
    setQuiet(true);
    ArchConfig c32;
    c32.numSms = 4;
    ArchConfig c64 = c32;
    c64.warpSize = 64;

    const RunResult r32 = runWorkload("MM", c32);
    const RunResult r64 = runWorkload("MM", c64);

    // MM's per-32-thread row operands are full-warp scalar at 32 and
    // quarter-scalar at 64 (Fig. 10's mechanism).
    EXPECT_EQ(r32.ev.halfScalarEligible, 0u);
    EXPECT_GT(r64.ev.halfScalarEligible, 0u);
    EXPECT_LT(double(r64.ev.scalarAluEligible) / double(r64.ev.warpInsts),
              double(r32.ev.scalarAluEligible) /
                  double(r32.ev.warpInsts));
}

TEST(Warp64, HalfTheWarpInstructions)
{
    setQuiet(true);
    ArchConfig c32;
    c32.numSms = 4;
    ArchConfig c64 = c32;
    c64.warpSize = 64;
    const RunResult r32 = runWorkload("ST", c32);
    const RunResult r64 = runWorkload("ST", c64);
    // Same threads grouped into half as many warps.
    EXPECT_NEAR(double(r64.ev.warpInsts),
                double(r32.ev.warpInsts) / 2.0,
                double(r32.ev.warpInsts) * 0.02);
    EXPECT_EQ(r64.ev.threadInsts, r32.ev.threadInsts);
}

} // namespace
} // namespace gs
