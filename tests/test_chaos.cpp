/**
 * @file
 * Chaos suite: the hardened request path under injected faults. Every
 * test arms a fault class and asserts the end result is *identical* to
 * a fault-free run (the absorption contract), or that permanent
 * failures are captured and degraded gracefully rather than aborting.
 * Covers all three seams — engine workers, store file ops, serve
 * sockets — plus the daemon's shed-load guards and a CLI-level
 * byte-identical check through the real binary (GS_CLI_PATH).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "harness/engine.hpp"
#include "harness/runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/run_cache.hpp"
#include "workloads/workload.hpp"

namespace fs = std::filesystem;
using namespace gs;

namespace
{

/** Fresh mkdtemp directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gschaos-XXXXXX").string();
        char *p = ::mkdtemp(tmpl.data());
        EXPECT_NE(p, nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** Short throwaway socket path (sun_path caps at ~108 bytes). */
struct TempSocket
{
    std::string path;

    TempSocket()
    {
        static std::atomic<unsigned> counter{0};
        path = (fs::temp_directory_path() /
                ("gsc-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock"))
                   .string();
    }

    ~TempSocket() { ::unlink(path.c_str()); }
};

/** Disarm the global injector on scope exit, whatever happens. */
struct DisarmAtExit
{
    ~DisarmAtExit() { faultInjector().disarm(); }
};

void
arm(const std::string &spec)
{
    std::string err;
    ASSERT_TRUE(faultInjector().configure(spec, &err)) << err;
}

/** Live .run records under @p root, excluding quarantine/. */
std::vector<fs::path>
recordFiles(const std::string &root)
{
    std::vector<fs::path> out;
    std::error_code ec;
    for (const auto &e : fs::recursive_directory_iterator(root, ec)) {
        if (!e.is_regular_file() || e.path().extension() != ".run")
            continue;
        bool quarantined = false;
        for (const auto &part : e.path())
            if (part == "quarantine")
                quarantined = true;
        if (!quarantined)
            out.push_back(e.path());
    }
    return out;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.ev.cycles, b.ev.cycles);
    EXPECT_EQ(a.ev.warpInsts, b.ev.warpInsts);
    EXPECT_DOUBLE_EQ(a.power.totalW, b.power.totalW);
}

/** A workload whose setup always throws (a permanent failure — the
 *  injector's Suppress guard cannot absorb it). */
Workload
failingWorkload(const std::string &name)
{
    Workload w;
    w.name = name;
    w.fullName = "always failing";
    w.suite = "test";
    w.setup = [](GlobalMemory &, std::uint64_t) {
        throw std::runtime_error("setup exploded");
    };
    return w;
}

int
rawConnect(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)),
        0);
    return fd;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Run the real CLI with an environment prefix, capturing stdout and
 *  stderr into files; returns the exit status. */
int
runCli(const std::string &envPrefix, const std::string &args,
       const std::string &outFile, const std::string &errFile)
{
    const std::string cmd = envPrefix + " '" GS_CLI_PATH "' " + args +
                            " > '" + outFile + "' 2> '" + errFile + "'";
    return std::system(cmd.c_str());
}

} // namespace

// ---- engine seam --------------------------------------------------------

TEST(ChaosEngine, ThrowFaultIsAbsorbedByRetry)
{
    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;
    const RunResult clean = runWorkload("BT", cfg);

    DisarmAtExit cleanup;
    arm("engine:throw:1");
    ExperimentEngine engine(2);
    const RunResult faulted = engine.run("BT", cfg);
    expectSameResult(faulted, clean);

    // Every simulation threw once and was retried under Suppress.
    const CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.runRetries, 1u);
    EXPECT_EQ(stats.runFailures, 0u);
    EXPECT_FALSE(engine.degraded());
    EXPECT_GE(faultInjector().injectedAt("engine"), 1u);
}

TEST(ChaosEngine, SlowFaultOnlyCostsWallClock)
{
    ArchConfig cfg;
    const RunResult clean = runWorkload("BT", cfg);

    DisarmAtExit cleanup;
    arm("engine:slow:1:3");
    ExperimentEngine engine(1);
    const RunResult faulted = engine.run("BT", cfg);
    expectSameResult(faulted, clean);
    EXPECT_EQ(engine.cacheStats().runRetries, 0u);
}

TEST(ChaosEngine, PermanentFailureIsCapturedAndDegrades)
{
    healthCounters().reset();
    ArchConfig cfg;
    ExperimentEngine engine(2);

    // Three distinct permanently-failing runs: each is retried once,
    // captured into its RunResult (the suite keeps going), and the
    // third trips the degradation threshold.
    for (int i = 0; i < int(ExperimentEngine::kDegradeThreshold); ++i) {
        const RunResult r =
            engine.run(failingWorkload("FAIL" + std::to_string(i)), cfg);
        EXPECT_FALSE(r.ok());
        EXPECT_NE(r.error.find("setup exploded"), std::string::npos);
        EXPECT_EQ(r.ev.cycles, 0u);
    }
    EXPECT_TRUE(engine.degraded());
    EXPECT_TRUE(engine.snapshot().degraded);

    const CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.runRetries, 3u);
    EXPECT_EQ(stats.runFailures, 3u);

    // Degraded mode still answers work — inline, on the caller thread.
    const RunResult good = engine.run("BT", cfg);
    EXPECT_TRUE(good.ok()) << good.error;
    EXPECT_GT(good.ev.cycles, 0u);
    EXPECT_GE(engine.cacheStats().serialFallbacks, 1u);
    EXPECT_GE(healthCounters().snapshot().serialFallbacks, 1u);
    healthCounters().reset();
}

// ---- store seam ---------------------------------------------------------

TEST(ChaosStore, CorruptRecordIsQuarantinedAndRecomputed)
{
    TempDir tmp;
    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;

    RunResult clean;
    {
        ExperimentEngine engine(1);
        engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
        clean = engine.run("BT", cfg);
        ASSERT_TRUE(clean.ok()) << clean.error;
        EXPECT_EQ(engine.diskCache()->stats().stores, 1u);
    }

    // Corrupt the published record on disk (a real bit flip, no
    // injector): the next engine must reject it, quarantine it, and
    // transparently recompute — satellite 4's end-to-end repair path.
    std::vector<fs::path> files = recordFiles(tmp.path);
    ASSERT_EQ(files.size(), 1u);
    {
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(16);
        char c = 0;
        f.seekg(16);
        f.get(c);
        f.seekp(16);
        f.put(char(c ^ 0x20));
    }

    {
        ExperimentEngine engine(1);
        engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
        const RunResult repaired = engine.run("BT", cfg);
        expectSameResult(repaired, clean);
        const DiskCacheStats ds = engine.diskCache()->stats();
        EXPECT_GE(ds.rejects, 1u);
        EXPECT_EQ(ds.quarantined, 1u);
        EXPECT_EQ(ds.stores, 1u); // recomputed result re-published
        EXPECT_EQ(engine.cacheStats().diskHits, 0u);
    }
    std::error_code ec;
    EXPECT_FALSE(fs::is_empty(fs::path(tmp.path) / "quarantine", ec));

    // The repaired record now serves a third engine from disk.
    {
        ExperimentEngine engine(1);
        engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
        const RunResult cached = engine.run("BT", cfg);
        expectSameResult(cached, clean);
        EXPECT_EQ(engine.cacheStats().diskHits, 1u);
    }
}

TEST(ChaosStore, PublishFaultsNeverChangeResults)
{
    ArchConfig cfg;
    const RunResult clean = runWorkload("BT", cfg);

    DisarmAtExit cleanup;
    for (const char *kind : {"short-write", "rename-fail"}) {
        TempDir tmp;
        arm(std::string("store:") + kind + ":1");
        ExperimentEngine engine(1);
        engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
        const RunResult faulted = engine.run("BT", cfg);
        expectSameResult(faulted, clean);
        const DiskCacheStats ds = engine.diskCache()->stats();
        EXPECT_EQ(ds.stores, 0u) << kind;
        EXPECT_GE(ds.publishFailures, 1u) << kind;
        // A failed publish never leaves tmp litter or a live record.
        EXPECT_TRUE(recordFiles(tmp.path).empty()) << kind;
        faultInjector().disarm();
    }
}

TEST(ChaosStore, BitFlipFaultIsCaughtOnNextLoad)
{
    ArchConfig cfg;
    const RunResult clean = runWorkload("BT", cfg);
    TempDir tmp;

    DisarmAtExit cleanup;
    arm("store:bit-flip:1");
    {
        // The flip corrupts the record *after* the checksummed write,
        // so this store publishes poisoned bytes successfully.
        ExperimentEngine engine(1);
        engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
        expectSameResult(engine.run("BT", cfg), clean);
        EXPECT_EQ(engine.diskCache()->stats().stores, 1u);
    }
    faultInjector().disarm();

    // The next process trips the FNV-1a checksum, quarantines, and
    // recomputes — the corruption never reaches a result.
    ExperimentEngine engine(1);
    engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
    expectSameResult(engine.run("BT", cfg), clean);
    EXPECT_GE(engine.diskCache()->stats().rejects, 1u);
    EXPECT_EQ(engine.diskCache()->stats().quarantined, 1u);
}

// ---- serve seam ---------------------------------------------------------

TEST(ChaosServe, ClientRetriesUntilServerAppears)
{
    TempSocket sock;
    healthCounters().reset();

    ExperimentEngine engine(1);
    GscalarServer server(engine, [&] {
        GscalarServer::Options o;
        o.socketPath = sock.path;
        return o;
    }());

    // Start the server only after the client's first attempts have
    // already failed: the backoff loop must carry it through.
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        std::string serr;
        ASSERT_TRUE(server.start(&serr)) << serr;
    });

    ClientOptions copts;
    copts.attempts = 30;
    copts.backoffBaseSec = 0.05;
    copts.backoffMaxSec = 0.2;
    GscalarClient client(sock.path, copts);
    std::string err;
    EXPECT_TRUE(client.ping(&err)) << err;
    EXPECT_GE(healthCounters().snapshot().clientRetries, 1u);

    starter.join();
    server.stop();
    healthCounters().reset();
}

TEST(ChaosServe, ConnResetExhaustsRetriesCleanly)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    DisarmAtExit cleanup;
    healthCounters().reset();
    arm("serve:conn-reset:1");
    ClientOptions copts;
    copts.attempts = 3;
    copts.backoffBaseSec = 0.001;
    copts.backoffMaxSec = 0.01;
    GscalarClient client(sock.path, copts);
    EXPECT_FALSE(client.ping(&err));
    EXPECT_FALSE(err.empty());
    EXPECT_GE(healthCounters().snapshot().clientRetries, 2u);

    // Disarmed, the same client recovers on a fresh connection.
    faultInjector().disarm();
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
    healthCounters().reset();
}

TEST(ChaosServe, EintrStormIsAbsorbed)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    ArchConfig cfg;
    const RunResult direct = runWorkload("BT", cfg);

    DisarmAtExit cleanup;
    // Rate 1 with a bounded per-call storm budget: every read and
    // write wades through injected EINTRs yet completes.
    arm("serve:eintr:1");
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    const std::optional<RunResult> served = client.run("BT", cfg, &err);
    ASSERT_TRUE(served.has_value()) << err;
    expectSameResult(*served, direct);
    EXPECT_GE(faultInjector().injectedAt("serve"), 1u);
    server.stop();
}

TEST(ChaosServe, ConnectionCapShedsWithRetryableStatus)
{
    EXPECT_TRUE(retryableStatus(ResponseStatus::Overloaded));
    EXPECT_TRUE(retryableStatus(ResponseStatus::ShuttingDown));
    EXPECT_FALSE(retryableStatus(ResponseStatus::Ok));
    EXPECT_FALSE(retryableStatus(ResponseStatus::BadRequest));
    EXPECT_FALSE(retryableStatus(ResponseStatus::InternalError));

    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    o.maxConnections = 1;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // First client occupies the only slot...
    GscalarClient holder(sock.path);
    ASSERT_TRUE(holder.ping(&err)) << err;

    // ...so a second connection is answered Overloaded and closed.
    const int fd = rawConnect(sock.path);
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    const std::optional<RunResponse> resp =
        deserializeResponse(payload.data(), payload.size(), &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::Overloaded);
    EXPECT_NE(resp->error.find("connection cap"), std::string::npos);
    ::close(fd);

    EXPECT_EQ(server.stats().overloads, 1u);
    // The held connection still works after the shed.
    EXPECT_TRUE(holder.ping(&err)) << err;
    server.stop();
}

TEST(ChaosServe, IdleConnectionsAreClosedButClientsRecover)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    o.idleTimeoutSec = 0.15;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    GscalarClient client(sock.path);
    ASSERT_TRUE(client.ping(&err)) << err;

    // Linger past the idle budget: the server reaps the connection.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    EXPECT_GE(server.stats().idleCloses, 1u);

    // The client's next request rides its retry loop onto a fresh
    // connection instead of failing on the dead one.
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
}

TEST(ChaosServe, OversizedFramesAreRejectedNotServed)
{
    TempSocket sock;
    ExperimentEngine engine(1);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    o.maxFrameBytes = 1024;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    const int fd = rawConnect(sock.path);
    const std::vector<std::uint8_t> big(4096, 0x5a);
    ASSERT_TRUE(writeFrame(fd, big));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    const std::optional<RunResponse> resp =
        deserializeResponse(payload.data(), payload.size(), &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->status, ResponseStatus::BadRequest);
    EXPECT_NE(resp->error.find("1024"), std::string::npos);
    ::close(fd);

    EXPECT_EQ(server.stats().frameRejects, 1u);
    // Well-behaved clients are unaffected.
    GscalarClient client(sock.path);
    EXPECT_TRUE(client.ping(&err)) << err;
    server.stop();
}

// ---- double faults: two seams armed at once -----------------------------

TEST(ChaosDoubleFault, StoreBitFlipPlusEngineThrowByteIdentical)
{
    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;
    const RunResult clean = runWorkload("BT", cfg);

    DisarmAtExit cleanup;
    TempDir tmp;
    // Both seams armed at once: every simulation throws (and is
    // retried under Suppress) while every published cache record is
    // poisoned after its checksummed write.
    arm("store:bit-flip:1:2,engine:throw:1:3");
    {
        ExperimentEngine engine(2);
        engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
        const RunResult faulted = engine.run("BT", cfg);
        expectSameResult(faulted, clean);
        EXPECT_GE(engine.cacheStats().runRetries, 1u);
        EXPECT_EQ(engine.diskCache()->stats().stores, 1u);
    }

    // A second process composes both recoveries: the poisoned record
    // trips the checksum and is quarantined, the recompute rides the
    // engine retry — and the result is still identical.
    ExperimentEngine engine(2);
    engine.setDiskCache(std::make_unique<DiskRunCache>(tmp.path));
    const RunResult recovered = engine.run("BT", cfg);
    expectSameResult(recovered, clean);
    EXPECT_GE(engine.diskCache()->stats().rejects, 1u);
    EXPECT_EQ(engine.diskCache()->stats().quarantined, 1u);
    EXPECT_GE(engine.cacheStats().runRetries, 1u);
}

TEST(ChaosDoubleFault, ConnResetPlusLeaderCrashServesEveryClient)
{
    TempSocket sock;
    ArchConfig cfg;
    const RunResult direct = runWorkload("BT", cfg);

    ExperimentEngine engine(2);
    GscalarServer::Options o;
    o.socketPath = sock.path;
    GscalarServer server(engine, o);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    DisarmAtExit cleanup;
    healthCounters().reset();
    // Connections reset underneath clients while every coalesced
    // flight's leader crashes before reaching the engine: the client
    // retry ladder and the server's follower promotion must compose.
    arm("serve:conn-reset:0.15:5,serve:coalesce-leader-crash:1:6");
    constexpr int kClients = 4;
    std::vector<std::optional<RunResult>> results(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            ClientOptions copts;
            copts.attempts = 20;
            copts.backoffBaseSec = 0.005;
            copts.backoffMaxSec = 0.05;
            copts.jitterSeed = std::uint64_t(i);
            GscalarClient client(sock.path, copts);
            std::string cerr;
            results[std::size_t(i)] = client.run("BT", cfg, &cerr);
        });
    for (std::thread &t : clients)
        t.join();
    faultInjector().disarm();

    for (const std::optional<RunResult> &r : results) {
        ASSERT_TRUE(r.has_value());
        expectSameResult(*r, direct);
    }
    EXPECT_GE(server.stats().coalescePromotions, 1u);
    server.stop();
    healthCounters().reset();
}

// ---- end to end through the real binary ---------------------------------

TEST(ChaosCli, BenchOutputByteIdenticalUnderEngineFaults)
{
    TempDir tmp;
    const std::string args = "bench --only=fig8 --format=text";
    const std::string outClean = tmp.path + "/clean.out";
    const std::string outFault = tmp.path + "/fault.out";
    const std::string errFile = tmp.path + "/err";

    ASSERT_EQ(runCli("", args, outClean, errFile), 0) << slurp(errFile);
    // The acceptance bar: any single fault class at rate <= 0.1 leaves
    // the bench bytes untouched (stderr may report retries).
    ASSERT_EQ(runCli("GS_FAULT=engine:throw:0.1:1", args, outFault,
                     errFile),
              0)
        << slurp(errFile);
    const std::string clean = slurp(outClean);
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, slurp(outFault));
}

TEST(ChaosCli, RunOutputByteIdenticalUnderStoreFaults)
{
    TempDir tmp;
    const std::string args = "run BT --mode gscalar --power";
    const std::string outClean = tmp.path + "/clean.out";
    const std::string errFile = tmp.path + "/err";
    ASSERT_EQ(runCli("", args, outClean, errFile), 0) << slurp(errFile);
    const std::string clean = slurp(outClean);
    ASSERT_FALSE(clean.empty());

    int seed = 2;
    for (const char *kind : {"short-write", "rename-fail", "bit-flip"}) {
        const std::string cache = tmp.path + "/cache-" + kind;
        const std::string out = tmp.path + "/" + kind + ".out";
        const std::string env = "GS_CACHE_DIR='" + cache +
                                "' GS_FAULT=store:" + kind + ":1:" +
                                std::to_string(seed++);
        // Twice against the same cache: the first process exercises the
        // store path under fault, the second the load/quarantine path.
        ASSERT_EQ(runCli(env, args, out, errFile), 0)
            << kind << ": " << slurp(errFile);
        EXPECT_EQ(clean, slurp(out)) << kind;
        ASSERT_EQ(runCli(env, args, out, errFile), 0)
            << kind << ": " << slurp(errFile);
        EXPECT_EQ(clean, slurp(out)) << kind;
    }
}

TEST(ChaosCli, MalformedFaultSpecsAreRejected)
{
    TempDir tmp;
    const std::string out = tmp.path + "/out";
    const std::string err = tmp.path + "/err";
    EXPECT_NE(runCli("GS_FAULT=gpu:throw:1", "list", out, err), 0);
    EXPECT_NE(slurp(err).find("GS_FAULT"), std::string::npos);
    EXPECT_NE(runCli("", "run BT --fault engine:throw:2", out, err), 0);
    EXPECT_NE(slurp(err).find("--fault"), std::string::npos);
    // A well-formed spec is accepted.
    EXPECT_EQ(runCli("GS_FAULT=engine:throw:0", "list", out, err), 0);
}
