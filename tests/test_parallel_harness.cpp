/**
 * @file
 * Tests of the parallel experiment engine: determinism of parallel
 * runs vs serial ones, memoizing run-cache behaviour, config
 * fingerprint sensitivity, and worker-pool basics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

#include "common/log.hpp"
#include "harness/engine.hpp"
#include "harness/report.hpp"

namespace gs
{
namespace
{

TEST(Fingerprint, StableForEqualConfigs)
{
    const ArchConfig a;
    const ArchConfig b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fingerprint(), a.fingerprint());
}

TEST(Fingerprint, ChangesWhenAnyFieldChanges)
{
    const std::uint64_t base = ArchConfig{}.fingerprint();

    const std::vector<
        std::pair<const char *, std::function<void(ArchConfig &)>>>
        mutations = {
            {"mode", [](ArchConfig &c) { c.mode = ArchMode::GScalarFull; }},
            {"numSms", [](ArchConfig &c) { c.numSms += 1; }},
            {"warpSize", [](ArchConfig &c) { c.warpSize = 64; }},
            {"simtWidth", [](ArchConfig &c) { c.simtWidth = 8; }},
            {"sfuWidth", [](ArchConfig &c) { c.sfuWidth = 8; }},
            {"numAluPipes", [](ArchConfig &c) { c.numAluPipes = 3; }},
            {"maxThreadsPerSm",
             [](ArchConfig &c) { c.maxThreadsPerSm = 1024; }},
            {"maxCtasPerSm", [](ArchConfig &c) { c.maxCtasPerSm = 4; }},
            {"numVregsPerSm", [](ArchConfig &c) { c.numVregsPerSm = 512; }},
            {"numBanks", [](ArchConfig &c) { c.numBanks = 8; }},
            {"arraysPerBank", [](ArchConfig &c) { c.arraysPerBank = 4; }},
            {"numCollectors", [](ArchConfig &c) { c.numCollectors = 8; }},
            {"numSchedulers", [](ArchConfig &c) { c.numSchedulers = 4; }},
            {"schedPolicy",
             [](ArchConfig &c) {
                 c.schedPolicy = SchedPolicy::LooseRoundRobin;
             }},
            {"checkGranularity",
             [](ArchConfig &c) { c.checkGranularity = 8; }},
            {"halfRegisterCompression",
             [](ArchConfig &c) { c.halfRegisterCompression = false; }},
            {"scalarRfBanks", [](ArchConfig &c) { c.scalarRfBanks = 2; }},
            {"insertSpecialMoves",
             [](ArchConfig &c) { c.insertSpecialMoves = false; }},
            {"compilerAssistedSmov",
             [](ArchConfig &c) { c.compilerAssistedSmov = true; }},
            {"scalarShortensOccupancy",
             [](ArchConfig &c) { c.scalarShortensOccupancy = true; }},
            {"aluLatency", [](ArchConfig &c) { c.aluLatency += 1; }},
            {"mulLatency", [](ArchConfig &c) { c.mulLatency += 1; }},
            {"divLatency", [](ArchConfig &c) { c.divLatency += 1; }},
            {"sfuLatency", [](ArchConfig &c) { c.sfuLatency += 1; }},
            {"lineBytes", [](ArchConfig &c) { c.lineBytes = 64; }},
            {"l1Bytes", [](ArchConfig &c) { c.l1Bytes *= 2; }},
            {"l1Assoc", [](ArchConfig &c) { c.l1Assoc = 2; }},
            {"l1Latency", [](ArchConfig &c) { c.l1Latency += 1; }},
            {"l1MshrEntries", [](ArchConfig &c) { c.l1MshrEntries = 32; }},
            {"l2Bytes", [](ArchConfig &c) { c.l2Bytes *= 2; }},
            {"l2Assoc", [](ArchConfig &c) { c.l2Assoc = 4; }},
            {"l2Latency", [](ArchConfig &c) { c.l2Latency += 1; }},
            {"dramLatency", [](ArchConfig &c) { c.dramLatency += 1; }},
            {"memChannels", [](ArchConfig &c) { c.memChannels = 8; }},
            {"dramRequestsPerCycle",
             [](ArchConfig &c) { c.dramRequestsPerCycle = 1.0; }},
            {"sharedLatency", [](ArchConfig &c) { c.sharedLatency += 1; }},
            {"sharedBanks", [](ArchConfig &c) { c.sharedBanks = 16; }},
            {"coreClockGhz", [](ArchConfig &c) { c.coreClockGhz = 1.5; }},
            {"maxCycles", [](ArchConfig &c) { c.maxCycles += 1; }},
            {"seed", [](ArchConfig &c) { c.seed += 1; }},
        };

    for (const auto &[name, mutate] : mutations) {
        ArchConfig c;
        mutate(c);
        EXPECT_NE(c.fingerprint(), base)
            << "fingerprint() ignores field " << name;
    }
}

TEST(WorkerPool, DefaultJobsIsPositive)
{
    EXPECT_GE(WorkerPool::defaultJobs(), 1u);
}

TEST(WorkerPool, RunsEverySubmittedTask)
{
    std::atomic<int> done{0};
    {
        WorkerPool pool(4);
        EXPECT_EQ(pool.jobs(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&done] { ++done; });
    } // destructor drains the queue
    EXPECT_EQ(done.load(), 100);
}

TEST(ParallelHarness, CacheHitsForRepeatedRuns)
{
    setQuiet(true);
    ExperimentEngine engine(2);
    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;

    const RunResult first = engine.run("MQ", cfg);
    CacheStats s = engine.cacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 0u);

    const RunResult second = engine.run("MQ", cfg);
    s = engine.cacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(csvRow(first), csvRow(second));

    // Any config difference is a different key.
    ArchConfig other = cfg;
    other.seed += 1;
    engine.run("MQ", other);
    s = engine.cacheStats();
    EXPECT_EQ(s.misses, 2u);

    engine.clearCache();
    engine.run("MQ", cfg);
    s = engine.cacheStats();
    EXPECT_EQ(s.misses, 3u);
}

TEST(ParallelHarness, ParallelMatchesSerialByteForByte)
{
    setQuiet(true);
    const std::vector<std::string> benches = {"MQ", "HS", "BP", "PF"};
    const ArchMode modes[] = {ArchMode::Baseline, ArchMode::GScalarFull};

    // Serial reference, one run at a time on this thread.
    std::vector<std::string> serial;
    for (const ArchMode m : modes) {
        for (const auto &b : benches) {
            ArchConfig cfg;
            cfg.mode = m;
            serial.push_back(csvRow(runWorkload(b, cfg)));
        }
    }

    // Same matrix fanned out over four workers; csvRow covers every
    // event counter and power component, so equality here is
    // bit-level determinism of the simulation under concurrency.
    ExperimentEngine engine(4);
    std::vector<std::shared_future<RunResult>> futures;
    for (const ArchMode m : modes) {
        for (const auto &b : benches) {
            ArchConfig cfg;
            cfg.mode = m;
            futures.push_back(engine.submit(b, cfg));
        }
    }
    for (std::size_t i = 0; i < futures.size(); ++i)
        EXPECT_EQ(serial[i], csvRow(futures[i].get())) << "run " << i;
}

TEST(ParallelHarness, SuiteKeepsTable2Order)
{
    setQuiet(true);
    ExperimentEngine engine(4);
    ArchConfig cfg;
    const std::vector<RunResult> results = engine.runSuite(cfg);
    const auto &names = workloadNames();
    ASSERT_EQ(results.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(results[i].workload, names[i]);
        EXPECT_GT(results[i].wallSeconds, 0.0);
    }

    // A second pass is served entirely from the cache.
    const CacheStats before = engine.cacheStats();
    engine.runSuite(cfg);
    const CacheStats after = engine.cacheStats();
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_EQ(after.hits, before.hits + names.size());
}

} // namespace
} // namespace gs
