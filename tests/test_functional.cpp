#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "sim/functional.hpp"

namespace gs
{
namespace
{

class FunctionalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        warp.init(/*regs=*/8, /*preds=*/2, /*warp=*/8, /*lanes=*/8);
        ctx.ctaId = 3;
        ctx.nTid = 64;
        ctx.nCtaId = 10;
        ctx.warpId = 1;
        ctx.threadBase = 8;
        shared.assign(16, 0);
    }

    void
    setReg(RegIdx r, std::initializer_list<Word> vals)
    {
        auto span = warp.regValues(r);
        unsigned i = 0;
        for (const Word v : vals)
            span[i++] = v;
    }

    Word
    runOne(const Instruction &inst, unsigned lane = 0,
           LaneMask mask = 0xff)
    {
        const auto r =
            executeFunctional(inst, warp, mask, ctx, gmem,
                              std::span<Word>(shared));
        return r.dst[lane];
    }

    WarpState warp;
    SregContext ctx;
    GlobalMemory gmem;
    std::vector<Word> shared;
};

Instruction
op2(Opcode o, RegIdx d, RegIdx a, RegIdx b)
{
    Instruction i;
    i.op = o;
    i.dst = d;
    i.src[0] = a;
    i.src[1] = b;
    return i;
}

TEST_F(FunctionalTest, IntegerArithmetic)
{
    setReg(0, {10, 20, 0x80000000});
    setReg(1, {3, 7, 1});
    EXPECT_EQ(runOne(op2(Opcode::IADD, 2, 0, 1)), 13u);
    EXPECT_EQ(runOne(op2(Opcode::ISUB, 2, 0, 1)), 7u);
    EXPECT_EQ(runOne(op2(Opcode::IMUL, 2, 0, 1)), 30u);
    EXPECT_EQ(runOne(op2(Opcode::IMIN, 2, 0, 1)), 3u);
    EXPECT_EQ(runOne(op2(Opcode::IMAX, 2, 0, 1)), 10u);
    EXPECT_EQ(runOne(op2(Opcode::IDIV, 2, 0, 1)), 3u);
    EXPECT_EQ(runOne(op2(Opcode::IREM, 2, 0, 1)), 1u);
}

TEST_F(FunctionalTest, DivideEdgeCases)
{
    setReg(0, {100, Word(INT32_MIN)});
    setReg(1, {0, Word(-1)});
    const auto r = executeFunctional(op2(Opcode::IDIV, 2, 0, 1), warp,
                                     0b11, ctx, gmem, {});
    EXPECT_EQ(r.dst[0], 0u);                 // divide by zero -> 0
    EXPECT_EQ(r.dst[1], Word(INT32_MIN));    // INT_MIN / -1 saturates
}

TEST_F(FunctionalTest, Logic)
{
    setReg(0, {0b1100});
    setReg(1, {0b1010});
    EXPECT_EQ(runOne(op2(Opcode::AND, 2, 0, 1)), 0b1000u);
    EXPECT_EQ(runOne(op2(Opcode::OR, 2, 0, 1)), 0b1110u);
    EXPECT_EQ(runOne(op2(Opcode::XOR, 2, 0, 1)), 0b0110u);
    EXPECT_EQ(runOne(op2(Opcode::SHL, 2, 0, 1)) , 0b1100u << 10);
}

TEST_F(FunctionalTest, FloatArithmetic)
{
    setReg(0, {std::bit_cast<Word>(1.5f)});
    setReg(1, {std::bit_cast<Word>(2.0f)});
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(op2(Opcode::FADD, 2, 0, 1))),
                    3.5f);
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(op2(Opcode::FMUL, 2, 0, 1))),
                    3.0f);

    Instruction ffma = op2(Opcode::FFMA, 3, 0, 1);
    ffma.src[2] = 1;
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(ffma)), 5.0f);
}

TEST_F(FunctionalTest, SpecialFunctions)
{
    setReg(0, {std::bit_cast<Word>(4.0f)});
    Instruction i;
    i.op = Opcode::SQRT;
    i.dst = 1;
    i.src[0] = 0;
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(i)), 2.0f);
    i.op = Opcode::RCP;
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(i)), 0.25f);
    i.op = Opcode::EX2;
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(i)), 16.0f);
    i.op = Opcode::LG2;
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(i)), 2.0f);
    i.op = Opcode::RSQ;
    EXPECT_FLOAT_EQ(std::bit_cast<float>(runOne(i)), 0.5f);
}

TEST_F(FunctionalTest, SaturatingF2I)
{
    setReg(0, {std::bit_cast<Word>(3.9f), std::bit_cast<Word>(-2.5f),
               std::bit_cast<Word>(1e20f),
               std::bit_cast<Word>(std::nanf(""))});
    Instruction i;
    i.op = Opcode::F2I;
    i.dst = 1;
    i.src[0] = 0;
    const auto r = executeFunctional(i, warp, 0xf, ctx, gmem, {});
    EXPECT_EQ(r.dst[0], 3u);
    EXPECT_EQ(std::int32_t(r.dst[1]), -2);
    EXPECT_EQ(r.dst[2], Word(INT32_MAX));
    EXPECT_EQ(r.dst[3], 0u);
}

TEST_F(FunctionalTest, PredicateCompareAndSel)
{
    setReg(0, {1, 5, 3, 3});
    setReg(1, {3, 3, 3, 3});
    Instruction cmp = op2(Opcode::ISETP, kNoReg, 0, 1);
    cmp.dst = kNoReg;
    cmp.pdst = 0;
    cmp.cmp = CmpOp::LT;
    const auto r = executeFunctional(cmp, warp, 0xf, ctx, gmem, {});
    EXPECT_EQ(r.predTrue, 0b0001u);
    EXPECT_EQ(warp.pred(0), 0b0001u);

    Instruction sel = op2(Opcode::SEL, 2, 0, 1);
    sel.psrc = 0;
    const auto s = executeFunctional(sel, warp, 0xf, ctx, gmem, {});
    EXPECT_EQ(s.dst[0], 1u); // pred true -> src0
    EXPECT_EQ(s.dst[1], 3u); // pred false -> src1
}

TEST_F(FunctionalTest, PredicateWriteRespectsMask)
{
    setReg(0, {9, 9, 9, 9});
    warp.setPred(0, 0b1111, 0b1111);
    Instruction cmp;
    cmp.op = Opcode::ISETP;
    cmp.pdst = 0;
    cmp.cmp = CmpOp::EQ;
    cmp.src[0] = 0;
    cmp.imm = 0;
    cmp.hasImm = true;
    executeFunctional(cmp, warp, 0b0011, ctx, gmem, {});
    // Lanes 0-1 recomputed (9 != 0 -> false); lanes 2-3 keep true.
    EXPECT_EQ(warp.pred(0), 0b1100u);
}

TEST_F(FunctionalTest, SpecialRegisters)
{
    Instruction i;
    i.op = Opcode::S2R;
    i.dst = 0;
    i.sreg = SReg::Tid;
    auto r = executeFunctional(i, warp, 0xff, ctx, gmem, {});
    EXPECT_EQ(r.dst[0], 8u);  // threadBase + lane
    EXPECT_EQ(r.dst[5], 13u);
    i.sreg = SReg::CtaId;
    EXPECT_EQ(runOne(i), 3u);
    i.sreg = SReg::NTid;
    EXPECT_EQ(runOne(i), 64u);
    i.sreg = SReg::NCtaId;
    EXPECT_EQ(runOne(i), 10u);
    i.sreg = SReg::WarpId;
    EXPECT_EQ(runOne(i), 1u);
    i.sreg = SReg::LaneId;
    r = executeFunctional(i, warp, 0xff, ctx, gmem, {});
    EXPECT_EQ(r.dst[6], 6u);
}

TEST_F(FunctionalTest, GlobalLoadStore)
{
    gmem.writeWord(0x1000, 0xABCD);
    setReg(0, {0x1000, 0x1004});
    Instruction ld;
    ld.op = Opcode::LDG;
    ld.dst = 1;
    ld.src[0] = 0;
    auto r = executeFunctional(ld, warp, 0b01, ctx, gmem, {});
    EXPECT_EQ(r.dst[0], 0xABCDu);
    EXPECT_EQ(r.addrs[0], 0x1000u);

    setReg(2, {0x42, 0x43});
    Instruction st;
    st.op = Opcode::STG;
    st.src[0] = 0;
    st.src[1] = 2;
    st.imm = 8;
    executeFunctional(st, warp, 0b11, ctx, gmem, {});
    EXPECT_EQ(gmem.readWord(0x1008), 0x42u);
    EXPECT_EQ(gmem.readWord(0x100c), 0x43u);
}

TEST_F(FunctionalTest, SharedLoadStore)
{
    setReg(0, {8});  // byte address -> word 2
    setReg(1, {77});
    Instruction st;
    st.op = Opcode::STS;
    st.src[0] = 0;
    st.src[1] = 1;
    executeFunctional(st, warp, 0b1, ctx, gmem,
                      std::span<Word>(shared));
    EXPECT_EQ(shared[2], 77u);

    Instruction ld;
    ld.op = Opcode::LDS;
    ld.dst = 2;
    ld.src[0] = 0;
    const auto r = executeFunctional(ld, warp, 0b1, ctx, gmem,
                                     std::span<Word>(shared));
    EXPECT_EQ(r.dst[0], 77u);
}

TEST_F(FunctionalTest, SmovIgnoresMask)
{
    setReg(0, {1, 2, 3, 4, 5, 6, 7, 8});
    Instruction smov;
    smov.op = Opcode::SMOV;
    smov.dst = 0;
    smov.src[0] = 0;
    const auto r = executeFunctional(smov, warp, 0b1, ctx, gmem, {});
    EXPECT_EQ(r.writeMask, warp.fullMask());
    EXPECT_EQ(r.dst[7], 8u);
}

TEST_F(FunctionalTest, InactiveLanesUntouched)
{
    setReg(0, {10, 20});
    setReg(1, {1, 2});
    setReg(2, {111, 222});
    const Instruction add = op2(Opcode::IADD, 2, 0, 1);
    const auto r = executeFunctional(add, warp, 0b01, ctx, gmem, {});
    EXPECT_EQ(r.writeMask, 0b01u);
    EXPECT_EQ(r.dst[0], 11u);
    // Lane 1 result is unspecified, but the write mask excludes it.
}

} // namespace
} // namespace gs
