/**
 * @file
 * Integration tests driving small hand-built kernels through the full
 * SM pipeline (via a single-SM GPU) and checking both functional
 * results and micro-architectural event counts.
 */

#include <gtest/gtest.h>

#include <bit>

#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"

namespace gs
{
namespace
{

ArchConfig
oneSm(ArchMode mode = ArchMode::Baseline)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    cfg.mode = mode;
    return cfg;
}

/** out[tid] = tid * 3 + 1, via a counted loop. */
Kernel
loopKernel()
{
    KernelBuilder kb("loop");
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg acc = kb.reg();
    kb.movi(acc, 1);
    const Reg i = kb.reg();
    kb.forRangeI(i, 0, 3, [&] { kb.iadd(acc, acc, tid); });
    const Reg addr = kb.reg();
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, 0x10000);
    kb.stg(addr, acc);
    return kb.build();
}

TEST(SmIntegration, LoopComputesCorrectValues)
{
    Gpu gpu(oneSm());
    gpu.launch(loopKernel(), {1, 32});
    for (unsigned t = 0; t < 32; ++t)
        EXPECT_EQ(gpu.memory().readWord(0x10000 + 4 * t), 1 + 3 * t)
            << "tid " << t;
}

TEST(SmIntegration, FunctionalResultIdenticalAcrossModes)
{
    // The architecture mode changes timing and energy, never values.
    std::vector<Word> ref;
    for (const ArchMode m :
         {ArchMode::Baseline, ArchMode::AluScalar,
          ArchMode::WarpedCompression, ArchMode::GScalarCompressOnly,
          ArchMode::GScalarNoDiv, ArchMode::GScalarFull}) {
        Gpu gpu(oneSm(m));
        gpu.launch(loopKernel(), {2, 64});
        const auto out = gpu.memory().readWords(0x10000, 64);
        if (ref.empty())
            ref = out;
        else
            EXPECT_EQ(out, ref) << archModeName(m);
    }
}

/** Divergent kernel: odd lanes double, even lanes negate. */
Kernel
divergentKernel()
{
    KernelBuilder kb("div");
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg v = kb.reg();
    kb.mov(v, tid);
    const Reg parity = kb.reg();
    kb.andi(parity, tid, 1);
    const Pred odd = kb.pred();
    kb.isetpi(odd, CmpOp::NE, parity, 0);
    kb.ifElse(
        odd, [&] { kb.iadd(v, v, v); },
        [&] { kb.emit2i(Opcode::ISUB, v, v, 0), kb.emit1(Opcode::NOT, v, v); });
    const Reg addr = kb.reg();
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, 0x20000);
    kb.stg(addr, v);
    return kb.build();
}

TEST(SmIntegration, DivergentPathsBothExecute)
{
    Gpu gpu(oneSm());
    const EventCounts ev = gpu.launch(divergentKernel(), {1, 32});
    for (unsigned t = 0; t < 32; ++t) {
        const Word got = gpu.memory().readWord(0x20000 + 4 * t);
        if (t % 2)
            EXPECT_EQ(got, 2 * t) << t;
        else
            EXPECT_EQ(got, Word(~t)) << t;
    }
    EXPECT_GT(ev.divergentWarpInsts, 0u);
}

TEST(SmIntegration, BarrierOrdersSharedMemory)
{
    // Thread t writes shared[t]; after the barrier, reads shared[t+1]
    // (wrapping). Without a working barrier the values would be stale.
    KernelBuilder kb("barrier");
    kb.shared(64 * 4);
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg saddr = kb.reg();
    kb.shli(saddr, tid, 2);
    kb.sts(saddr, tid);
    kb.bar();
    const Reg next = kb.reg();
    kb.iaddi(next, tid, 1);
    kb.andi(next, next, 63);
    kb.shli(next, next, 2);
    const Reg v = kb.reg();
    kb.lds(v, next);
    const Reg addr = kb.reg();
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, 0x30000);
    kb.stg(addr, v);
    const Kernel k = kb.build();

    Gpu gpu(oneSm());
    gpu.launch(k, {1, 64}); // two warps force real synchronisation
    for (unsigned t = 0; t < 64; ++t)
        EXPECT_EQ(gpu.memory().readWord(0x30000 + 4 * t), (t + 1) % 64)
            << "tid " << t;
}

/** Kernel with a divergent write to a previously compressed register. */
Kernel
smovKernel()
{
    KernelBuilder kb("smov");
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg v = kb.reg();
    kb.movi(v, 7); // compressed scalar write
    const Reg parity = kb.reg();
    kb.andi(parity, tid, 1);
    const Pred odd = kb.pred();
    kb.isetpi(odd, CmpOp::NE, parity, 0);
    kb.ifThen(odd, [&] { kb.iaddi(v, v, 1); }); // partial write to v
    const Reg addr = kb.reg();
    kb.shli(addr, tid, 2);
    kb.iaddi(addr, addr, 0x40000);
    kb.stg(addr, v);
    return kb.build();
}

TEST(SmIntegration, SpecialMoveInsertedOnDivergentWriteToCompressed)
{
    Gpu gpu(oneSm(ArchMode::GScalarFull));
    const EventCounts ev = gpu.launch(smovKernel(), {1, 32});
    EXPECT_EQ(ev.specialMoveInsts, 1u);
    // Functional result unaffected.
    EXPECT_EQ(gpu.memory().readWord(0x40000), 7u);
    EXPECT_EQ(gpu.memory().readWord(0x40004), 8u);
}

TEST(SmIntegration, NoSpecialMovesInBaseline)
{
    Gpu gpu(oneSm(ArchMode::Baseline));
    const EventCounts ev = gpu.launch(smovKernel(), {1, 32});
    EXPECT_EQ(ev.specialMoveInsts, 0u);
}

TEST(SmIntegration, SpecialMovesCanBeDisabled)
{
    ArchConfig cfg = oneSm(ArchMode::GScalarFull);
    cfg.insertSpecialMoves = false;
    Gpu gpu(cfg);
    const EventCounts ev = gpu.launch(smovKernel(), {1, 32});
    EXPECT_EQ(ev.specialMoveInsts, 0u);
}

/** All-scalar kernel: every ALU source is warp-uniform. */
Kernel
scalarKernel()
{
    KernelBuilder kb("scalar");
    const Reg a = kb.reg();
    const Reg b = kb.reg();
    const Reg c = kb.reg();
    kb.movi(a, 5);
    kb.movi(b, 9);
    for (int i = 0; i < 10; ++i)
        kb.iadd(c, a, b);
    const Reg addr = kb.reg();
    kb.movi(addr, 0x50000);
    kb.stg(addr, c);
    return kb.build();
}

TEST(SmIntegration, ScalarExecutionCountsAndRfSavings)
{
    Gpu base_gpu(oneSm(ArchMode::Baseline));
    const EventCounts base = base_gpu.launch(scalarKernel(), {1, 32});
    EXPECT_GE(base.scalarAluEligible, 12u);
    EXPECT_EQ(base.scalarExecuted, 0u);

    Gpu gs_gpu(oneSm(ArchMode::GScalarFull));
    const EventCounts ev = gs_gpu.launch(scalarKernel(), {1, 32});
    EXPECT_GE(ev.scalarExecuted, 12u);
    EXPECT_GT(ev.bvrAccesses, 0u);
    // Scalar traffic moves off the big arrays.
    EXPECT_LT(ev.rfArrayReads, base.rfArrayReads / 4);
    // And exec lanes are clock-gated: 1 lane vs 32.
    EXPECT_LT(ev.aluLaneOps, base.aluLaneOps / 4);
}

TEST(SmIntegration, AluScalarUsesScalarRf)
{
    Gpu gpu(oneSm(ArchMode::AluScalar));
    const EventCounts ev = gpu.launch(scalarKernel(), {1, 32});
    EXPECT_GT(ev.scalarRfAccesses, 0u);
    EXPECT_GT(ev.scalarExecuted, 0u);
    EXPECT_EQ(ev.bvrAccesses, 0u);
}

TEST(SmIntegration, CompressionLatencyCostsCycles)
{
    Gpu base_gpu(oneSm(ArchMode::Baseline));
    const EventCounts base = base_gpu.launch(loopKernel(), {1, 32});
    Gpu c_gpu(oneSm(ArchMode::GScalarCompressOnly));
    const EventCounts comp = c_gpu.launch(loopKernel(), {1, 32});
    EXPECT_GT(comp.cycles, base.cycles); // +3 pipeline depth, one warp
}

TEST(SmIntegration, PartialLastWarp)
{
    Gpu gpu(oneSm());
    gpu.launch(loopKernel(), {1, 40}); // warp 1 holds only 8 threads
    for (unsigned t = 0; t < 40; ++t)
        EXPECT_EQ(gpu.memory().readWord(0x10000 + 4 * t), 1 + 3 * t);
}

} // namespace
} // namespace gs
