/**
 * @file
 * Structural regressions on the benchmark kernels themselves: opcode
 * ingredients, control flow, and resource footprints that the
 * calibration relies on. These catch accidental edits to the kernels
 * without running the simulator.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/config.hpp"
#include "workloads/workload.hpp"

namespace gs
{
namespace
{

std::map<Opcode, unsigned>
opcodeHistogram(const Kernel &k)
{
    std::map<Opcode, unsigned> h;
    for (const Instruction &i : k.code)
        ++h[i.op];
    return h;
}

const Kernel &
kernelOf(const Workload &w)
{
    return w.launches.front().kernel;
}

TEST(WorkloadStructure, BpUsesTranscendentalsAndGroupLoads)
{
    const Workload w = makeWorkload("BP");
    const auto h = opcodeHistogram(kernelOf(w));
    EXPECT_GT(h.at(Opcode::EX2), 0u); // 2^n loop
    EXPECT_GT(h.at(Opcode::RCP), 0u);
    EXPECT_GT(h.at(Opcode::FFMA), 0u);
    EXPECT_GT(h.at(Opcode::SHR), 0u); // group index tid>>4
}

TEST(WorkloadStructure, MqUsesSinCos)
{
    const auto h = opcodeHistogram(kernelOf(makeWorkload("MQ")));
    EXPECT_GT(h.at(Opcode::SIN), 0u);
    EXPECT_GT(h.at(Opcode::COS), 0u);
    EXPECT_GT(h.at(Opcode::RSQ), 0u); // scalar SFU prefactor
}

TEST(WorkloadStructure, LcUsesIntegerDivide)
{
    const auto h = opcodeHistogram(kernelOf(makeWorkload("LC")));
    EXPECT_GT(h.at(Opcode::IDIV), 0u);
    EXPECT_GT(h.at(Opcode::SQRT), 0u);
}

TEST(WorkloadStructure, PfUsesSharedMemoryAndBarriers)
{
    const Kernel &k = kernelOf(makeWorkload("PF"));
    const auto h = opcodeHistogram(k);
    EXPECT_GT(h.at(Opcode::LDS), 0u);
    EXPECT_GT(h.at(Opcode::STS), 0u);
    EXPECT_GE(h.at(Opcode::BAR), 2u);
    EXPECT_GT(k.sharedBytes, 0u);
}

TEST(WorkloadStructure, DivergentBenchmarksHaveBranches)
{
    for (const char *name : {"BT", "HW", "HS", "CC", "LBM", "SAD",
                             "ACF", "MG", "MV", "SR1", "PF"}) {
        const Workload w = makeWorkload(name);
        const auto h = opcodeHistogram(kernelOf(w));
        EXPECT_GT(h.count(Opcode::BRA), 0u) << name;
    }
}

TEST(WorkloadStructure, NonDivergentBenchmarksBranchOnlyForLoops)
{
    // MM/MQ/ST/SR2/BP/LC branch only via uniform counted loops: every
    // BRA predicate must be statically uniform.
    for (const char *name : {"MM", "MQ", "ST", "SR2", "BP", "LC"}) {
        const Workload w = makeWorkload(name);
        const Kernel &k = kernelOf(w);
        // All BRA guards must come from ISETPs whose sources trace to
        // loop counters; structurally we just require each BRA to have
        // a guard (counted-loop form) and no ifElse JMP diamonds.
        for (const Instruction &i : k.code) {
            if (i.op == Opcode::BRA) {
                EXPECT_NE(i.guard, kNoPred) << name;
            }
        }
    }
}

TEST(WorkloadStructure, EveryKernelWritesOutput)
{
    for (const Workload &w : makeSuite()) {
        const auto h = opcodeHistogram(kernelOf(w));
        EXPECT_GT(h.at(Opcode::STG), 0u) << w.name;
        EXPECT_GT(h.at(Opcode::LDG), 0u) << w.name;
    }
}

TEST(WorkloadStructure, RegisterFootprintsAllowFullOccupancy)
{
    // Except for LC (deliberately occupancy-starved by its tiny grid),
    // kernels must not be register-limited below 8 CTAs per SM.
    ArchConfig cfg;
    for (const Workload &w : makeSuite()) {
        const Kernel &k = kernelOf(w);
        EXPECT_LE(k.numRegs, 32u) << w.name;
        const unsigned warps = cfg.warpsPerCta(
            w.launches.front().dims.threadsPerCta);
        if (w.name != "LC") {
            EXPECT_GE(cfg.numVregsPerSm / (warps * k.numRegs), 8u)
                << w.name;
        }
    }
}

TEST(WorkloadStructure, GridsCoverAllSms)
{
    for (const Workload &w : makeSuite()) {
        EXPECT_GE(w.launches.front().dims.ctas, 15u) << w.name;
        EXPECT_EQ(w.launches.front().dims.threadsPerCta % 32, 0u)
            << w.name;
    }
}

TEST(WorkloadStructure, ControlDependenceRecorded)
{
    // The static analyses rely on builder-recorded regions; every
    // branchy kernel must carry them.
    for (const char *name : {"HW", "LBM", "SAD", "ACF"}) {
        const Kernel &k = kernelOf(makeWorkload(name));
        EXPECT_FALSE(k.regions.empty()) << name;
        EXPECT_EQ(k.enclosingPreds.size(), k.code.size()) << name;
    }
}

} // namespace
} // namespace gs
