#include <gtest/gtest.h>

#include "common/table.hpp"

namespace gs
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table t;
    t.row({"name", "value"});
    t.row({"x", "12345"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos); // header rule
    // Both rows align: "value" column starts at the same offset.
    const auto l1 = s.find("value");
    const auto l2 = s.find("12345");
    const auto nl1 = s.rfind('\n', l1);
    const auto nl2 = s.rfind('\n', l2);
    EXPECT_EQ(l1 - nl1, l2 - nl2);
}

TEST(Table, TitleRendered)
{
    Table t("My Title");
    t.row({"a"});
    EXPECT_NE(t.str().find("== My Title =="), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.256), "25.6%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, RaggedRowsSupported)
{
    Table t;
    t.row({"a", "b", "c"});
    t.row({"x"});
    t.row({"1", "2"});
    EXPECT_FALSE(t.str().empty());
}

TEST(Table, EmptyTable)
{
    Table t("empty");
    EXPECT_NE(t.str().find("empty"), std::string::npos);
}

} // namespace
} // namespace gs
