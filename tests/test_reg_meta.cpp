#include <gtest/gtest.h>

#include <vector>

#include "compress/reg_meta.hpp"

namespace gs
{
namespace
{

constexpr unsigned kWarp = 32;
constexpr unsigned kGran = 16;
const LaneMask kFull = laneMaskLow(kWarp);

std::vector<Word>
scalarReg(Word v)
{
    return std::vector<Word>(kWarp, v);
}

TEST(RegMeta, NonDivergentScalarWrite)
{
    const auto v = scalarReg(0x1234);
    const RegMeta m = analyzeWrite(v, kFull, kFull, kGran);
    EXPECT_TRUE(m.valid);
    EXPECT_FALSE(m.divergent);
    EXPECT_EQ(m.fullEnc, 4);
    EXPECT_EQ(m.fullBase, 0x1234u);
    EXPECT_TRUE(m.fullScalar());
    EXPECT_TRUE(m.groupScalar(0));
    EXPECT_TRUE(m.groupScalar(1));
}

TEST(RegMeta, HalfScalarTwoDistinctValues)
{
    // First half holds A, second half holds B: each group scalar, FS
    // would be 0 (Section 4.3).
    std::vector<Word> v(kWarp, 0xAAAA0000);
    for (unsigned i = 16; i < 32; ++i)
        v[i] = 0xBBBB0000;
    const RegMeta m = analyzeWrite(v, kFull, kFull, kGran);
    EXPECT_TRUE(m.groupScalar(0));
    EXPECT_TRUE(m.groupScalar(1));
    EXPECT_FALSE(m.fullScalar());
    EXPECT_EQ(m.groupBase[0], 0xAAAA0000u);
    EXPECT_EQ(m.groupBase[1], 0xBBBB0000u);
}

TEST(RegMeta, DivergentWriteStoresMask)
{
    // Fig. 6: a divergent write with a uniform value over active lanes
    // records enc = 1111 and keeps the active mask in the BVR.
    std::vector<Word> v(kWarp, 0);
    const LaneMask mask = 0b10101100;
    for (unsigned i = 0; i < kWarp; ++i)
        if (mask & (LaneMask{1} << i))
            v[i] = 0xAA;
    const RegMeta m = analyzeWrite(v, mask, kFull, kGran);
    EXPECT_TRUE(m.divergent);
    EXPECT_EQ(m.fullEnc, 4);
    EXPECT_EQ(m.writeMask, mask);
    EXPECT_FALSE(m.fullScalar()); // D=1 suppresses the FS view
    EXPECT_FALSE(m.groupScalar(0));
}

TEST(RegMeta, DivergentWriteNonUniformValues)
{
    std::vector<Word> v(kWarp, 0);
    v[0] = 0x11;
    v[2] = 0x22334455;
    const RegMeta m = analyzeWrite(v, 0b101, kFull, kGran);
    EXPECT_TRUE(m.divergent);
    EXPECT_LT(m.fullEnc, 4);
}

TEST(RegMeta, PartialWarpFullMaskIsNonDivergent)
{
    // A warp owning only 8 lanes writing all 8 is not divergent.
    const LaneMask full8 = laneMaskLow(8);
    std::vector<Word> v(8, 7);
    const RegMeta m = analyzeWrite(v, full8, full8, 8);
    EXPECT_FALSE(m.divergent);
    EXPECT_TRUE(m.fullScalar());
}

TEST(RegMeta, ShadowBdiTracked)
{
    std::vector<Word> v;
    for (Word i = 0; i < kWarp; ++i)
        v.push_back(100 + i);
    const RegMeta m = analyzeWrite(v, kFull, kFull, kGran);
    EXPECT_EQ(m.bdiMode, BdiMode::BaseDelta1);
    EXPECT_EQ(m.bdiBytes, 4u + kWarp);
}

TEST(RegMeta, GroupEncIndependentPerGroup)
{
    std::vector<Word> v;
    for (unsigned i = 0; i < 16; ++i)
        v.push_back(0xAB000000 + i); // 3-byte common in group 0
    for (unsigned i = 0; i < 16; ++i)
        v.push_back(0x11223344);     // scalar in group 1
    const RegMeta m = analyzeWrite(v, kFull, kFull, kGran);
    EXPECT_EQ(m.groupEnc[0], 3);
    EXPECT_EQ(m.groupEnc[1], 4);
    EXPECT_FALSE(m.groupScalar(0));
    EXPECT_TRUE(m.groupScalar(1));
}

TEST(RegMeta, WarpSize64Groups)
{
    std::vector<Word> v(64);
    for (unsigned g = 0; g < 4; ++g)
        for (unsigned i = 0; i < 16; ++i)
            v[g * 16 + i] = 0x1000 * (g + 1);
    const RegMeta m =
        analyzeWrite(v, laneMaskLow(64), laneMaskLow(64), 16);
    for (unsigned g = 0; g < 4; ++g) {
        EXPECT_TRUE(m.groupScalar(g)) << "group " << g;
        EXPECT_EQ(m.groupBase[g], 0x1000u * (g + 1));
    }
    EXPECT_FALSE(m.fullScalar());
}

} // namespace
} // namespace gs
