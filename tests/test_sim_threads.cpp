/**
 * @file
 * Determinism contract of intra-run SM threading (sim/parallel.hpp)
 * and the codec's cpu-dispatch seam (compress/simd.hpp): every thread
 * count and every SIMD level must produce byte-identical results —
 * csvRow covers every event counter and power component, so equality
 * there is bit-level determinism of the whole simulation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "compress/byte_mask_codec.hpp"
#include "compress/simd.hpp"
#include "fault/fault.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"
#include "sim/parallel.hpp"
#include "workloads/workload.hpp"

namespace gs
{
namespace
{

/** Restore the --sim-threads default (env consult) on scope exit. */
struct SimThreadsAtExit
{
    ~SimThreadsAtExit() { setSimThreads(0); }
};

/** Restore the auto-detected SIMD level on scope exit. */
struct SimdLevelAtExit
{
    ~SimdLevelAtExit() { clearSimdLevelOverride(); }
};

/** Disarm the global fault injector on scope exit. */
struct DisarmAtExit
{
    ~DisarmAtExit() { faultInjector().disarm(); }
};

/** out[gtid] = gtid + 7: every thread stores a distinct word, so the
 *  memory image is a full fingerprint of the execution. */
Kernel
gridKernel()
{
    KernelBuilder kb("simthreads-grid");
    const Reg tid = kb.reg();
    const Reg ctaid = kb.reg();
    const Reg ntid = kb.reg();
    const Reg gtid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.s2r(ctaid, SReg::CtaId);
    kb.s2r(ntid, SReg::NTid);
    kb.imad(gtid, ctaid, ntid, tid);
    const Reg v = kb.reg();
    kb.iaddi(v, gtid, 7);
    const Reg addr = kb.reg();
    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, 0x100000);
    kb.stg(addr, v);
    return kb.build();
}

// ---------------------------------------------------------------- parsing

TEST(SimThreads, ParseAcceptsStrictPositiveIntegers)
{
    EXPECT_EQ(parseSimThreadsValue("1"), 1u);
    EXPECT_EQ(parseSimThreadsValue("4"), 4u);
    EXPECT_EQ(parseSimThreadsValue("4096"), 4096u);
}

TEST(SimThreads, ParseRejectsEverythingElse)
{
    for (const char *bad : {"", "0", "4097", "99999", "abc", "2x",
                            " 2", "2 ", "+2", "-2", "0x2", "2.0"})
        EXPECT_FALSE(parseSimThreadsValue(bad).has_value())
            << "'" << bad << "' should be rejected";
}

TEST(SimdDispatch, ParseAcceptsKnownLevels)
{
    EXPECT_EQ(parseSimdLevel("off"), SimdLevel::Off);
    EXPECT_EQ(parseSimdLevel("swar"), SimdLevel::Swar);
    EXPECT_EQ(parseSimdLevel("avx2"), SimdLevel::Avx2);
}

TEST(SimdDispatch, ParseRejectsUnknownNames)
{
    for (const char *bad : {"", "OFF", "sse", "avx512", "auto", " off"})
        EXPECT_FALSE(parseSimdLevel(bad).has_value())
            << "'" << bad << "' should be rejected";
}

TEST(SimdDispatch, NamesRoundTrip)
{
    for (const SimdLevel l :
         {SimdLevel::Off, SimdLevel::Swar, SimdLevel::Avx2})
        EXPECT_EQ(parseSimdLevel(simdLevelName(l)), l);
}

TEST(SimdDispatch, BaselineLevelsAlwaysSupported)
{
    EXPECT_TRUE(simdLevelSupported(SimdLevel::Off));
    EXPECT_TRUE(simdLevelSupported(SimdLevel::Swar));
}

// ------------------------------------------------------- codec equivalence

std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> out;
    for (const SimdLevel l :
         {SimdLevel::Off, SimdLevel::Swar, SimdLevel::Avx2})
        if (simdLevelSupported(l))
            out.push_back(l);
    return out;
}

TEST(SimdDispatch, AllLevelsAgreeOnAnalyze)
{
    SimdLevelAtExit restore;
    Rng rng(7);
    for (unsigned trial = 0; trial < 400; ++trial) {
        const unsigned lanes = 1 + rng.next32() % 64;
        std::vector<Word> values(lanes);
        const unsigned family = rng.next32() % 4;
        for (unsigned i = 0; i < lanes; ++i) {
            switch (family) {
              case 0: values[i] = 0xC04039C0; break;
              case 1: values[i] = 0xC04039C0 + i * 8; break;
              case 2: values[i] = 0xC0400000 + i * 1024; break;
              default: values[i] = rng.next32(); break;
            }
        }
        LaneMask active = rng.next64() & laneMaskLow(lanes);
        if (active == 0)
            active = 1;

        setSimdLevel(SimdLevel::Off);
        const ByteMaskEncoding ref = analyzeByteMask(values, active);
        for (const SimdLevel l : supportedLevels()) {
            setSimdLevel(l);
            const ByteMaskEncoding got = analyzeByteMask(values, active);
            EXPECT_EQ(ref.commonMsbs, got.commonMsbs)
                << "trial " << trial << " level " << simdLevelName(l);
            EXPECT_EQ(ref.base, got.base)
                << "trial " << trial << " level " << simdLevelName(l);
        }
    }
}

TEST(SimdDispatch, AllLevelsAgreeOnCompressedBytes)
{
    SimdLevelAtExit restore;
    Rng rng(11);
    for (unsigned trial = 0; trial < 200; ++trial) {
        const unsigned lanes = 1 + rng.next32() % 64;
        std::vector<Word> values(lanes);
        const unsigned family = rng.next32() % 4;
        for (unsigned i = 0; i < lanes; ++i) {
            switch (family) {
              case 0: values[i] = 0xDEADBEEF; break;
              case 1: values[i] = 0xDEADBE00 + i; break;
              case 2: values[i] = 0xDEAD0000 + i * 257; break;
              default: values[i] = rng.next32(); break;
            }
        }

        setSimdLevel(SimdLevel::Off);
        const std::vector<std::uint8_t> ref = byteMaskCompress(values);
        const unsigned msbs =
            analyzeByteMask(values, laneMaskLow(lanes)).commonMsbs;
        EXPECT_EQ(byteMaskDecompress(ref, msbs, lanes), values);
        for (const SimdLevel l : supportedLevels()) {
            setSimdLevel(l);
            EXPECT_EQ(ref, byteMaskCompress(values))
                << "trial " << trial << " level " << simdLevelName(l);
        }
    }
}

// ----------------------------------------------------- sim-core determinism

TEST(SimThreads, ParallelGpuMatchesSerialMemoryAndCounters)
{
    setQuiet(true);
    SimThreadsAtExit restore;
    ArchConfig cfg;
    cfg.numSms = 4;

    setSimThreads(1);
    Gpu serial(cfg);
    const EventCounts ref = serial.launch(gridKernel(), {20, 96});

    for (const unsigned threads : {2u, 4u}) {
        setSimThreads(threads);
        Gpu par(cfg);
        const EventCounts got = par.launch(gridKernel(), {20, 96});
        EXPECT_EQ(ref.cycles, got.cycles) << "threads " << threads;
        EXPECT_EQ(ref.warpInsts, got.warpInsts) << "threads " << threads;
        EXPECT_EQ(ref.threadInsts, got.threadInsts)
            << "threads " << threads;
        for (unsigned g = 0; g < 20 * 96; ++g)
            ASSERT_EQ(serial.memory().readWord(0x100000 + 4 * g),
                      par.memory().readWord(0x100000 + 4 * g))
                << "threads " << threads << " gtid " << g;
    }
}

TEST(SimThreads, FullSuiteByteIdenticalAcrossThreadCounts)
{
    setQuiet(true);
    SimThreadsAtExit restore;

    // Serial reference for every Table 2 workload.
    setSimThreads(1);
    std::vector<std::string> serial;
    for (const std::string &w : workloadNames()) {
        ArchConfig cfg;
        serial.push_back(csvRow(runWorkload(w, cfg)));
    }

    for (const unsigned threads : {2u, 4u}) {
        setSimThreads(threads);
        const auto &names = workloadNames();
        for (std::size_t i = 0; i < names.size(); ++i) {
            ArchConfig cfg;
            EXPECT_EQ(serial[i], csvRow(runWorkload(names[i], cfg)))
                << names[i] << " diverged at --sim-threads " << threads;
        }
    }
}

TEST(SimThreads, SimdLevelsByteIdenticalEndToEnd)
{
    setQuiet(true);
    SimThreadsAtExit restoreThreads;
    SimdLevelAtExit restoreSimd;

    setSimThreads(1);
    setSimdLevel(SimdLevel::Off);
    ArchConfig cfg;
    const std::string ref = csvRow(runWorkload("BP", cfg));

    // Every SIMD level, serial.
    for (const SimdLevel l : supportedLevels()) {
        setSimdLevel(l);
        EXPECT_EQ(ref, csvRow(runWorkload("BP", cfg)))
            << "GS_SIMD=" << simdLevelName(l);
    }

    // Cross matrix: non-default SIMD level x parallel ticking.
    setSimThreads(4);
    for (const SimdLevel l : supportedLevels()) {
        setSimdLevel(l);
        EXPECT_EQ(ref, csvRow(runWorkload("BP", cfg)))
            << "GS_SIMD=" << simdLevelName(l) << " --sim-threads 4";
    }
}

// ------------------------------------------------------------- watchdog

TEST(SimThreads, WatchdogReportsExactlyMaxCycles)
{
    setQuiet(true);
    SimThreadsAtExit restore;
    ArchConfig cfg;
    cfg.numSms = 4;
    cfg.maxCycles = 50; // far too few for the grid: watchdog fires

    setSimThreads(1);
    Gpu serial(cfg);
    EXPECT_EQ(serial.launch(gridKernel(), {20, 96}).cycles, 50u);

    setSimThreads(4);
    Gpu par(cfg);
    EXPECT_EQ(par.launch(gridKernel(), {20, 96}).cycles, 50u);
}

// ------------------------------------------------------------- chaos

TEST(SimThreads, StragglerThreadKeepsOutputByteIdentical)
{
    setQuiet(true);
    SimThreadsAtExit restoreThreads;
    DisarmAtExit disarm;
    ArchConfig cfg;
    cfg.numSms = 4;

    setSimThreads(1);
    Gpu serial(cfg);
    const EventCounts ref = serial.launch(gridKernel(), {16, 64});

    // A sim:slow fault parks one thread 2ms inside the cycle barrier;
    // the schedule must absorb the straggler without reordering.
    std::string err;
    ASSERT_TRUE(faultInjector().configure("sim:slow:0.05:42", &err))
        << err;
    setSimThreads(4);
    Gpu par(cfg);
    const EventCounts got = par.launch(gridKernel(), {16, 64});
    EXPECT_EQ(ref.cycles, got.cycles);
    EXPECT_EQ(ref.warpInsts, got.warpInsts);
    EXPECT_EQ(ref.threadInsts, got.threadInsts);
    for (unsigned g = 0; g < 16 * 64; ++g)
        ASSERT_EQ(serial.memory().readWord(0x100000 + 4 * g),
                  par.memory().readWord(0x100000 + 4 * g))
            << "gtid " << g;
    EXPECT_GT(faultInjector().injectedAt("sim"), 0u)
        << "straggler fault never fired; chaos proof is vacuous";
}

} // namespace
} // namespace gs
