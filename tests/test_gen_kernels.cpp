/**
 * @file
 * Kernel-generator tests (gen/generator.hpp, gen/fuzz.hpp): every
 * generated kernel is structurally valid; generation is a pure
 * function of the spec (byte-identical kernels across calls, and
 * byte-identical to golden FNV fingerprints pinned here — the
 * cross-platform seed-stability contract); generated kernels agree
 * with the reference interpreter in every architecture mode; campaign
 * spec drawing and the workload wrapper behave.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/artifact.hpp"
#include "gen/diff.hpp"
#include "gen/fuzz.hpp"
#include "gen/generator.hpp"
#include "store/serial.hpp"
#include "workloads/workload.hpp"

using namespace gs;

namespace
{

/** A spread of knob corners the generator must handle. */
std::vector<GenSpec>
cornerSpecs()
{
    std::vector<GenSpec> specs;

    GenSpec defaults;
    specs.push_back(defaults);

    GenSpec divergent;
    divergent.seed = 7;
    divergent.div = 100;
    divergent.pred = 50;
    specs.push_back(divergent);

    GenSpec scalarHeavy;
    scalarHeavy.seed = 11;
    scalarHeavy.div = 0;
    scalarHeavy.scalar = 60;
    scalarHeavy.affine = 40;
    specs.push_back(scalarHeavy);

    GenSpec memoryHeavy;
    memoryHeavy.seed = 13;
    memoryHeavy.stride = 8;
    memoryHeavy.ind = 100;
    memoryHeavy.shared = 60;
    specs.push_back(memoryHeavy);

    GenSpec tiny;
    tiny.seed = 17;
    tiny.ops = 1;
    tiny.ctas = 1;
    tiny.tpc = 1;
    specs.push_back(tiny);

    GenSpec wide;
    wide.seed = 19;
    wide.ops = 200;
    wide.ctas = 4;
    wide.tpc = 256;
    wide.sfu = 80;
    specs.push_back(wide);

    return specs;
}

std::uint64_t
kernelHash(const GenSpec &spec)
{
    const std::vector<std::uint8_t> blob =
        serializeKernel(generateKernel(spec));
    return fnv1a(blob.data(), blob.size());
}

} // namespace

TEST(GenKernels, EveryCornerSpecGeneratesAValidKernel)
{
    for (const GenSpec &spec : cornerSpecs()) {
        ASSERT_TRUE(spec.check().empty()) << spec.check();
        const Kernel k = generateKernel(spec);
        EXPECT_TRUE(k.check().empty())
            << spec.toName() << ": " << k.check();
        EXPECT_GE(k.code.size(), 2u) << spec.toName();
        EXPECT_EQ(k.name, spec.toName());
    }
}

TEST(GenKernels, GenerationIsAPureFunctionOfTheSpec)
{
    for (const GenSpec &spec : cornerSpecs()) {
        const std::vector<std::uint8_t> a =
            serializeKernel(generateKernel(spec));
        const std::vector<std::uint8_t> b =
            serializeKernel(generateKernel(spec));
        EXPECT_EQ(a, b) << spec.toName();
    }
}

/**
 * Seed-stability goldens: fixed specs must serialize to these exact
 * bytes on every platform and compiler. A change here means the
 * generator's draw sequence changed — which silently invalidates every
 * corpus artifact and recorded campaign; bump deliberately.
 */
TEST(GenKernels, GoldenKernelFingerprintsAreStable)
{
    struct Golden
    {
        std::uint64_t seed;
        std::uint64_t hash;
    };
    const Golden goldens[] = {
        {1, 0xe98f2525a0c47293ull},
        {2, 0xba9b3d1001de5cb9ull},
        {42, 0x00a8e311cf4fdde1ull},
    };
    for (const Golden &g : goldens) {
        GenSpec spec;
        spec.seed = g.seed;
        EXPECT_EQ(kernelHash(spec), g.hash)
            << "seed " << g.seed << ": actual 0x" << std::hex
            << kernelHash(spec);
    }
}

TEST(GenKernels, GeneratedKernelsAgreeWithTheReferenceEverywhere)
{
    DiffOptions opt;
    opt.numSms = 2;
    for (std::uint64_t seed : {3u, 5u, 8u}) {
        GenSpec spec;
        spec.seed = seed;
        spec.ops = 16;
        spec.ctas = 2;
        spec.tpc = 48;
        const Kernel k = generateKernel(spec);
        const DiffOutcome out = diffKernel(k, spec, opt);
        EXPECT_FALSE(out.refAborted) << spec.toName();
        for (const DiffMismatch &m : out.mismatches)
            ADD_FAILURE() << spec.toName() << ": "
                          << describeMismatch(m);
    }
}

TEST(GenKernels, DrawSpecIsDeterministicAndVaried)
{
    const GenSpec a = drawSpec(9, 0);
    EXPECT_EQ(a, drawSpec(9, 0));
    EXPECT_TRUE(a.check().empty()) << a.check();

    // Different indices and campaign seeds draw different specs.
    EXPECT_NE(a, drawSpec(9, 1));
    EXPECT_NE(a, drawSpec(10, 0));

    // Pinned knobs override the draw and survive validation.
    const GenSpec pinned =
        drawSpec(9, 0, {{"div", "0"}, {"scalar", "90"}});
    EXPECT_EQ(pinned.div, 0u);
    EXPECT_EQ(pinned.scalar, 90u);
    EXPECT_TRUE(pinned.check().empty()) << pinned.check();
}

TEST(GenKernels, WorkloadWrapperAndResolver)
{
    registerGenWorkloads();

    GenSpec spec;
    spec.seed = 21;
    spec.ops = 8;
    spec.ctas = 1;
    spec.tpc = 16;

    const Workload w = makeGenWorkload(spec);
    EXPECT_EQ(w.name, spec.toName());
    EXPECT_EQ(w.suite, "generated");
    ASSERT_EQ(w.launches.size(), 1u);
    EXPECT_EQ(w.launches[0].dims.ctas, spec.ctas);
    EXPECT_EQ(w.launches[0].dims.threadsPerCta, spec.tpc);
    EXPECT_TRUE(w.launches[0].kernel.check().empty());

    // The resolver turns the canonical name back into the workload.
    const Workload resolved = makeWorkload(spec.toName());
    EXPECT_EQ(resolved.name, w.name);
    ASSERT_EQ(resolved.launches.size(), 1u);
    EXPECT_EQ(serializeKernel(resolved.launches[0].kernel),
              serializeKernel(w.launches[0].kernel));
}

TEST(GenKernels, SmallCampaignIsCleanAndDeterministic)
{
    FuzzOptions opt;
    opt.count = 4;
    opt.seed = 2;
    opt.engineTraffic = false;
    opt.jobs = 2;
    opt.knobs = {{"ops", "10"}, {"ctas", "1"}, {"tpc", "24"}};

    const FuzzCampaignResult a = runFuzzCampaign(opt);
    EXPECT_TRUE(a.clean()) << a.summaryText;
    EXPECT_EQ(a.kernels, 4u);
    EXPECT_EQ(a.miscompares, 0u);
    EXPECT_TRUE(a.reportLines.empty());
    EXPECT_NE(a.summaryText.find("miscompares=0"), std::string::npos);

    // Same campaign, different worker count: identical report bytes.
    FuzzOptions serial = opt;
    serial.jobs = 1;
    const FuzzCampaignResult b = runFuzzCampaign(serial);
    EXPECT_EQ(b.summaryText, a.summaryText);
    EXPECT_EQ(b.reportLines, a.reportLines);
}
