#include <gtest/gtest.h>

#include <vector>

#include "compress/array_model.hpp"

namespace gs
{
namespace
{

const RfGeometry kGeo{32, 16};
const LaneMask kFull = laneMaskLow(32);

RegMeta
writeMeta(const std::vector<Word> &v, LaneMask mask)
{
    return analyzeWrite(v, mask, kFull, kGeo.granularity);
}

TEST(ArrayModel, Geometry)
{
    EXPECT_EQ(kGeo.groups(), 2u);
    EXPECT_EQ(kGeo.byteArrays(), 8u);  // 2 groups x 4 byte slices
    EXPECT_EQ(kGeo.wordArrays(), 8u);  // 8 x four-lane word arrays
    EXPECT_EQ(kGeo.regBytes(), 128u);

    const RfGeometry g64{64, 16};
    EXPECT_EQ(g64.groups(), 4u);
    EXPECT_EQ(g64.byteArrays(), 16u);
    EXPECT_EQ(g64.wordArrays(), 16u);
}

TEST(ArrayModel, BaselineFullRead)
{
    const auto c = baselineRead(kGeo);
    EXPECT_EQ(c.arrays, 8u);
    EXPECT_EQ(c.bvr, 0u);
    EXPECT_EQ(c.bytes, 128u);
}

TEST(ArrayModel, BaselinePartialWriteFewerArrays)
{
    // Section 3.3: the baseline activates only word arrays whose 4-lane
    // groups contain written lanes.
    EXPECT_EQ(baselineWrite(kGeo, 0b1111).arrays, 1u);
    EXPECT_EQ(baselineWrite(kGeo, 0b10001).arrays, 2u);
    EXPECT_EQ(baselineWrite(kGeo, kFull).arrays, 8u);
    EXPECT_EQ(baselineWrite(kGeo, 1).bytes, 4u);
}

TEST(ArrayModel, CompressedScalarReadFromBvrOnly)
{
    const RegMeta m = writeMeta(std::vector<Word>(32, 5), kFull);
    const auto c = compressedRead(kGeo, m, kFull, true, true);
    EXPECT_EQ(c.arrays, 0u);
    EXPECT_EQ(c.bvr, 2u); // one per half-register set
    EXPECT_EQ(c.bytes, 4u);
}

TEST(ArrayModel, CompressedReadActivatesOnlyDifferingSlices)
{
    // 3 common MSBs: one byte slice per group.
    std::vector<Word> v;
    for (Word i = 0; i < 32; ++i)
        v.push_back(0xAB112200 + i);
    const RegMeta m = writeMeta(v, kFull);
    ASSERT_EQ(m.fullEnc, 3);
    const auto c = compressedRead(kGeo, m, kFull, true, false);
    EXPECT_EQ(c.arrays, 2u); // (4-3) per group x 2 groups
    EXPECT_EQ(c.bytes, 2u * 16u);
}

TEST(ArrayModel, CompressedReadUncompressibleActivatesAll)
{
    std::vector<Word> v(32);
    for (unsigned i = 0; i < 32; ++i)
        v[i] = i * 0x01010101;
    const RegMeta m = writeMeta(v, kFull);
    ASSERT_EQ(m.fullEnc, 0);
    const auto c = compressedRead(kGeo, m, kFull, true, false);
    EXPECT_EQ(c.arrays, 8u);
    EXPECT_EQ(c.bytes, 128u);
}

TEST(ArrayModel, DivergentStoredReadTouchedGroupsOnly)
{
    std::vector<Word> v(32, 9);
    const RegMeta m = writeMeta(v, 0b0110); // divergent (group 0 only)
    ASSERT_TRUE(m.divergent);
    const auto lo = compressedRead(kGeo, m, 0b1, true, false);
    EXPECT_EQ(lo.arrays, 4u); // all 4 byte slices of group 0
    const auto both =
        compressedRead(kGeo, m, (LaneMask{1} << 20) | 1, true, false);
    EXPECT_EQ(both.arrays, 8u);
}

TEST(ArrayModel, DivergentWriteActivatesAllSlicesOfTouchedGroups)
{
    // Section 3.3: a partial update applies to decoded storage; every
    // byte slice of a touched group activates.
    std::vector<Word> v(32, 9);
    const RegMeta m = writeMeta(v, 0b0110);
    const auto c = compressedWrite(kGeo, m, true, false);
    EXPECT_EQ(c.arrays, 4u);
    EXPECT_EQ(c.bytes, 2u * 4u);
}

TEST(ArrayModel, ScalarWriteToBvrOnly)
{
    const RegMeta m = writeMeta(std::vector<Word>(32, 5), kFull);
    const auto c = compressedWrite(kGeo, m, true, true);
    EXPECT_EQ(c.arrays, 0u);
    EXPECT_EQ(c.bytes, 4u);
}

TEST(ArrayModel, HalfRegisterVsFullRegisterEncoding)
{
    // Group 0 scalar, group 1 uncompressible: per-half encodings save
    // arrays that a single full-warp encoding cannot.
    std::vector<Word> v(32);
    for (unsigned i = 0; i < 16; ++i)
        v[i] = 0x42;
    for (unsigned i = 16; i < 32; ++i)
        v[i] = i * 0x01010101;
    const RegMeta m = writeMeta(v, kFull);
    const auto half = compressedRead(kGeo, m, kFull, true, false);
    const auto full = compressedRead(kGeo, m, kFull, false, false);
    EXPECT_EQ(half.arrays, 4u); // 0 + 4
    EXPECT_EQ(full.arrays, 8u); // fullEnc == 0 everywhere
    EXPECT_LT(half.bytes, full.bytes);
}

TEST(ArrayModel, BdiReadPacksArrays)
{
    std::vector<Word> v;
    for (Word i = 0; i < 32; ++i)
        v.push_back(1000 + i);
    const RegMeta m = writeMeta(v, kFull);
    ASSERT_EQ(m.bdiMode, BdiMode::BaseDelta1);
    const auto c = bdiRead(kGeo, m, kFull);
    // ceil(36/16) = 3 plus one misalignment activation.
    EXPECT_EQ(c.arrays, 4u);
    EXPECT_EQ(c.bytes, 36u);
}

TEST(ArrayModel, BdiScalarBeatsUncompressed)
{
    const RegMeta s = writeMeta(std::vector<Word>(32, 3), kFull);
    const auto c = bdiRead(kGeo, s, kFull);
    EXPECT_EQ(c.arrays, 1u);
}

TEST(ArrayModel, StoredBytesAccounting)
{
    const RegMeta s = writeMeta(std::vector<Word>(32, 3), kFull);
    // Per-half: 4 base bytes each, no per-lane bytes.
    EXPECT_EQ(byteMaskRegStoredBytes(kGeo, s, true), 8u);
    EXPECT_EQ(byteMaskRegStoredBytes(kGeo, s, false), 8u);

    std::vector<Word> v(32, 9);
    const RegMeta d = writeMeta(v, 0b1); // divergent: stored raw
    EXPECT_EQ(byteMaskRegStoredBytes(kGeo, d, true), 128u);
}

TEST(ArrayModel, InvalidRegisterCostsFullAccess)
{
    const RegMeta m;
    EXPECT_EQ(compressedRead(kGeo, m, kFull, true, false).arrays, 8u);
    EXPECT_EQ(bdiRead(kGeo, m, kFull).arrays, 8u);
}

} // namespace
} // namespace gs
