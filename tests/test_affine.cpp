#include <gtest/gtest.h>

#include <vector>

#include "compress/affine.hpp"

namespace gs
{
namespace
{

TEST(Affine, ScalarIsAffineWithZeroStride)
{
    const std::vector<Word> v(32, 0x1234);
    const auto a = analyzeAffine(v, laneMaskLow(32));
    EXPECT_TRUE(a.affine);
    EXPECT_TRUE(a.isScalar());
    EXPECT_EQ(a.base, 0x1234u);
    EXPECT_EQ(a.stride, 0u);
}

TEST(Affine, AddressRamp)
{
    std::vector<Word> v;
    for (Word i = 0; i < 32; ++i)
        v.push_back(0x100000 + i * 4);
    const auto a = analyzeAffine(v, laneMaskLow(32));
    EXPECT_TRUE(a.affine);
    EXPECT_EQ(a.stride, 4u);
    EXPECT_EQ(a.base, 0x100000u);
    EXPECT_FALSE(a.isScalar());
}

TEST(Affine, NegativeStrideWraps)
{
    std::vector<Word> v;
    for (Word i = 0; i < 8; ++i)
        v.push_back(1000 - 3 * i);
    const auto a = analyzeAffine(v, laneMaskLow(8));
    EXPECT_TRUE(a.affine);
    EXPECT_EQ(a.stride, Word(-3));
}

TEST(Affine, NonAffineRejected)
{
    std::vector<Word> v = {0, 4, 8, 13};
    EXPECT_FALSE(analyzeAffine(v, 0b1111).affine);
}

TEST(Affine, RandomValuesRejected)
{
    const std::vector<Word> v = {0xdead, 0xbeef, 0xcafe, 0xf00d};
    EXPECT_FALSE(analyzeAffine(v, 0b1111).affine);
}

TEST(Affine, PartialMaskUsesLaneIndices)
{
    // Lanes 1 and 3 active: values must fit base + i*stride at those
    // indices specifically.
    std::vector<Word> v(8, 0);
    v[1] = 14; // base 10, stride 4 -> lane1 = 14
    v[3] = 22; // lane3 = 22
    const auto a = analyzeAffine(v, 0b1010);
    EXPECT_TRUE(a.affine);
    EXPECT_EQ(a.stride, 4u);
    EXPECT_EQ(a.base, 10u);
}

TEST(Affine, PartialMaskGapNotDivisible)
{
    std::vector<Word> v(8, 0);
    v[0] = 0;
    v[2] = 5; // gap 2, diff 5: no integer stride
    EXPECT_FALSE(analyzeAffine(v, 0b0101).affine);
}

TEST(Affine, SingleLaneAffine)
{
    std::vector<Word> v(8, 0);
    v[5] = 99;
    const auto a = analyzeAffine(v, 0b100000);
    EXPECT_TRUE(a.affine);
    EXPECT_TRUE(a.isScalar());
}

TEST(Affine, TidRampDetected)
{
    // S2R tid produces exactly the affine pattern (stride 1).
    std::vector<Word> v;
    for (Word i = 0; i < 32; ++i)
        v.push_back(64 + i);
    const auto a = analyzeAffine(v, laneMaskLow(32));
    EXPECT_TRUE(a.affine);
    EXPECT_EQ(a.stride, 1u);
}

} // namespace
} // namespace gs
