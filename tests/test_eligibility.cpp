#include <gtest/gtest.h>

#include <vector>

#include "scalar/eligibility.hpp"

namespace gs
{
namespace
{

constexpr unsigned kWarp = 32;
constexpr unsigned kGran = 16;
const LaneMask kFull = laneMaskLow(kWarp);

EligibilityContext
ctx(LaneMask active)
{
    EligibilityContext c;
    c.active = active;
    c.fullMask = kFull;
    c.granularity = kGran;
    c.warpSize = kWarp;
    return c;
}

RegMeta
scalarMeta(Word v)
{
    return analyzeWrite(std::vector<Word>(kWarp, v), kFull, kFull, kGran);
}

RegMeta
vectorMeta()
{
    std::vector<Word> v(kWarp);
    for (unsigned i = 0; i < kWarp; ++i)
        v[i] = i * 0x01010101;
    return analyzeWrite(v, kFull, kFull, kGran);
}

RegMeta
divergentScalarMeta(LaneMask mask, Word v)
{
    std::vector<Word> vals(kWarp, 0);
    for (unsigned i = 0; i < kWarp; ++i)
        if (mask & (LaneMask{1} << i))
            vals[i] = v;
    return analyzeWrite(vals, mask, kFull, kGran);
}

Instruction
aluInst()
{
    Instruction i;
    i.op = Opcode::FADD;
    i.dst = 0;
    i.src[0] = 1;
    i.src[1] = 2;
    return i;
}

TEST(Eligibility, FullAluScalar)
{
    const RegMeta srcs[] = {scalarMeta(1), scalarMeta(2)};
    const auto e = classifyScalar(aluInst(), srcs, ctx(kFull));
    EXPECT_EQ(e.tier, ScalarTier::FullAlu);
    EXPECT_EQ(e.scalarGroupMask, 0b11u);
}

TEST(Eligibility, VectorSourceBlocksScalar)
{
    const RegMeta srcs[] = {scalarMeta(1), vectorMeta()};
    const auto e = classifyScalar(aluInst(), srcs, ctx(kFull));
    EXPECT_EQ(e.tier, ScalarTier::None);
}

TEST(Eligibility, SfuAndMemTiers)
{
    Instruction sfu;
    sfu.op = Opcode::SIN;
    sfu.dst = 0;
    sfu.src[0] = 1;
    const RegMeta one[] = {scalarMeta(7)};
    EXPECT_EQ(classifyScalar(sfu, {one, 1}, ctx(kFull)).tier,
              ScalarTier::FullSfu);

    Instruction ld;
    ld.op = Opcode::LDG;
    ld.dst = 0;
    ld.src[0] = 1;
    EXPECT_EQ(classifyScalar(ld, {one, 1}, ctx(kFull)).tier,
              ScalarTier::FullMem);

    Instruction st;
    st.op = Opcode::STG;
    st.src[0] = 1;
    st.src[1] = 2;
    const RegMeta two[] = {scalarMeta(7), scalarMeta(9)};
    EXPECT_EQ(classifyScalar(st, {two, 2}, ctx(kFull)).tier,
              ScalarTier::FullMem);
}

TEST(Eligibility, HalfScalar)
{
    // Group 0 scalar, group 1 vector.
    std::vector<Word> v(kWarp);
    for (unsigned i = 0; i < 16; ++i)
        v[i] = 0x42;
    for (unsigned i = 16; i < kWarp; ++i)
        v[i] = i * 0x01010101;
    const RegMeta half = analyzeWrite(v, kFull, kFull, kGran);

    const RegMeta srcs[] = {half, scalarMeta(3)};
    const auto e = classifyScalar(aluInst(), srcs, ctx(kFull));
    EXPECT_EQ(e.tier, ScalarTier::Half);
    EXPECT_EQ(e.scalarGroupMask, 0b01u);
}

TEST(Eligibility, TwoDistinctHalvesStillHalfScalar)
{
    // Section 4.3: both halves scalar with different values (FS=0).
    std::vector<Word> v(kWarp, 0x10);
    for (unsigned i = 16; i < kWarp; ++i)
        v[i] = 0x20;
    const RegMeta m = analyzeWrite(v, kFull, kFull, kGran);
    const RegMeta srcs[] = {m, scalarMeta(3)};
    const auto e = classifyScalar(aluInst(), srcs, ctx(kFull));
    EXPECT_EQ(e.tier, ScalarTier::Half);
    EXPECT_EQ(e.scalarGroupMask, 0b11u);
}

TEST(Eligibility, DivergentScalarWithMatchingMask)
{
    // Fig. 7(b) step 2/3: a divergently-written register is scalar only
    // with respect to the exact mask it was written under.
    const LaneMask m1 = 0b10001111;
    const RegMeta d = divergentScalarMeta(m1, 0xAA);
    const RegMeta srcs[] = {d, scalarMeta(1)};

    EXPECT_EQ(classifyScalar(aluInst(), srcs, ctx(m1)).tier,
              ScalarTier::Divergent);

    const LaneMask m2 = 0b01110000; // the other path's mask
    EXPECT_EQ(classifyScalar(aluInst(), srcs, ctx(m2)).tier,
              ScalarTier::None);
}

TEST(Eligibility, CompressedScalarIsScalarForAnyMask)
{
    // A register holding one compressed scalar value (D=0, enc=1111) is
    // scalar with respect to any divergent mask.
    const RegMeta srcs[] = {scalarMeta(1), scalarMeta(2)};
    const auto e = classifyScalar(aluInst(), srcs, ctx(0b1010));
    EXPECT_EQ(e.tier, ScalarTier::Divergent);
}

TEST(Eligibility, DivergentNonUniformBlocks)
{
    std::vector<Word> v(kWarp, 0);
    v[0] = 1;
    v[1] = 999999;
    const RegMeta d = analyzeWrite(v, 0b11, kFull, kGran);
    const RegMeta srcs[] = {d, scalarMeta(2)};
    EXPECT_EQ(classifyScalar(aluInst(), srcs, ctx(0b11)).tier,
              ScalarTier::None);
}

TEST(Eligibility, NoHalfScalarOnDivergentPath)
{
    // Section 4.3: half-warp scalar execution is non-divergent only.
    std::vector<Word> v(kWarp, 0x42);
    for (unsigned i = 16; i < kWarp; ++i)
        v[i] = i;
    const RegMeta half = analyzeWrite(v, kFull, kFull, kGran);
    const RegMeta srcs[] = {half, scalarMeta(3)};
    EXPECT_EQ(classifyScalar(aluInst(), srcs, ctx(0b111)).tier,
              ScalarTier::None);
}

TEST(Eligibility, S2RUniformity)
{
    Instruction s2r;
    s2r.op = Opcode::S2R;
    s2r.dst = 0;

    auto c = ctx(kFull);
    c.sregUniform = true;
    EXPECT_EQ(classifyScalar(s2r, {}, c).tier, ScalarTier::FullAlu);
    c.sregUniform = false;
    EXPECT_EQ(classifyScalar(s2r, {}, c).tier, ScalarTier::None);
}

TEST(Eligibility, SelNeedsUniformPredicate)
{
    Instruction sel;
    sel.op = Opcode::SEL;
    sel.dst = 0;
    sel.src[0] = 1;
    sel.src[1] = 2;
    sel.psrc = 0;
    const RegMeta srcs[] = {scalarMeta(1), scalarMeta(2)};

    auto c = ctx(kFull);
    c.predUniform = false;
    c.predUniformGroups = 0;
    EXPECT_EQ(classifyScalar(sel, srcs, c).tier, ScalarTier::None);
    c.predUniform = true;
    EXPECT_EQ(classifyScalar(sel, srcs, c).tier, ScalarTier::FullAlu);
}

TEST(Eligibility, ControlAndSmovNeverScalar)
{
    Instruction bra;
    bra.op = Opcode::BRA;
    EXPECT_EQ(classifyScalar(bra, {}, ctx(kFull)).tier,
              ScalarTier::None);

    Instruction smov;
    smov.op = Opcode::SMOV;
    smov.dst = 0;
    smov.src[0] = 0;
    const RegMeta srcs[] = {scalarMeta(1)};
    EXPECT_EQ(classifyScalar(smov, {srcs, 1}, ctx(kFull)).tier,
              ScalarTier::None);
}

TEST(Eligibility, UnwrittenSourceBlocksDivergentScalar)
{
    const RegMeta invalid;
    const RegMeta srcs[] = {invalid};
    Instruction mov;
    mov.op = Opcode::MOV;
    mov.dst = 0;
    mov.src[0] = 1;
    EXPECT_EQ(classifyScalar(mov, {srcs, 1}, ctx(0b1)).tier,
              ScalarTier::None);
}

TEST(Eligibility, TierExploitationByMode)
{
    using T = ScalarTier;
    using M = ArchMode;
    EXPECT_FALSE(tierExploited(T::FullAlu, M::Baseline));
    EXPECT_TRUE(tierExploited(T::FullAlu, M::AluScalar));
    EXPECT_FALSE(tierExploited(T::FullSfu, M::AluScalar));
    EXPECT_TRUE(tierExploited(T::FullSfu, M::GScalarNoDiv));
    EXPECT_TRUE(tierExploited(T::FullMem, M::GScalarNoDiv));
    EXPECT_FALSE(tierExploited(T::Half, M::GScalarNoDiv));
    EXPECT_FALSE(tierExploited(T::Divergent, M::GScalarNoDiv));
    EXPECT_TRUE(tierExploited(T::Half, M::GScalarFull));
    EXPECT_TRUE(tierExploited(T::Divergent, M::GScalarFull));
    EXPECT_FALSE(tierExploited(T::FullAlu, M::WarpedCompression));
    EXPECT_FALSE(tierExploited(T::None, M::GScalarFull));
}

} // namespace
} // namespace gs
