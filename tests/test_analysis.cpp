#include <gtest/gtest.h>

#include "isa/analysis.hpp"
#include "isa/kernel_builder.hpp"

namespace gs
{
namespace
{

TEST(Analysis, UniformPropagation)
{
    KernelBuilder kb("k");
    const Reg ctaid = kb.reg();
    const Reg tid = kb.reg();
    const Reg u = kb.reg();
    const Reg v = kb.reg();
    kb.s2r(ctaid, SReg::CtaId); // uniform source
    kb.s2r(tid, SReg::Tid);     // per-lane source
    kb.iaddi(u, ctaid, 5);      // uniform
    kb.iadd(v, u, tid);         // tainted by tid
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_TRUE(a.uniformReg[unsigned(ctaid.idx)]);
    EXPECT_FALSE(a.uniformReg[unsigned(tid.idx)]);
    EXPECT_TRUE(a.uniformReg[unsigned(u.idx)]);
    EXPECT_FALSE(a.uniformReg[unsigned(v.idx)]);
}

TEST(Analysis, LoadsAreNeverStaticallyUniform)
{
    // The §6 limitation: even a broadcast load's value is unknown at
    // compile time.
    KernelBuilder kb("k");
    const Reg addr = kb.reg();
    const Reg val = kb.reg();
    kb.movi(addr, 0x1000); // uniform address
    kb.ldg(val, addr);
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_TRUE(a.uniformReg[unsigned(addr.idx)]);
    EXPECT_FALSE(a.uniformReg[unsigned(val.idx)]);
    // But the load itself is statically scalarizable: its address is
    // provably uniform.
    EXPECT_TRUE(a.staticScalar[1]);
}

TEST(Analysis, DivergentBranchTaintsWrites)
{
    KernelBuilder kb("k");
    const Reg tid = kb.reg();
    const Reg u = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.movi(u, 1); // uniform so far
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::LT, tid, 4); // divergent predicate
    kb.ifThen(p, [&] { kb.iaddi(u, u, 1); }); // partial write
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_FALSE(a.uniformPred[unsigned(p.idx)]);
    EXPECT_FALSE(a.uniformReg[unsigned(u.idx)]); // written divergently
    // The body instruction is not convergent.
    EXPECT_FALSE(a.convergent[4]);
}

TEST(Analysis, UniformBranchKeepsConvergence)
{
    KernelBuilder kb("k");
    const Reg ctaid = kb.reg();
    const Reg u = kb.reg();
    kb.s2r(ctaid, SReg::CtaId);
    kb.movi(u, 1);
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::LT, ctaid, 4); // uniform predicate
    kb.ifThen(p, [&] { kb.iaddi(u, u, 1); });
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_TRUE(a.uniformPred[unsigned(p.idx)]);
    EXPECT_TRUE(a.convergent[4]);                // body stays convergent
    EXPECT_TRUE(a.uniformReg[unsigned(u.idx)]);  // write stays uniform
}

TEST(Analysis, UniformLoopCounterStaysUniform)
{
    KernelBuilder kb("k");
    const Reg i = kb.reg();
    const Reg acc = kb.reg();
    kb.movi(acc, 0);
    kb.forRangeI(i, 0, 10, [&] { kb.iaddi(acc, acc, 1); });
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    // The trip count is uniform, so the loop does not diverge and both
    // the counter and the accumulator stay uniform.
    EXPECT_TRUE(a.uniformReg[unsigned(i.idx)]);
    EXPECT_TRUE(a.uniformReg[unsigned(acc.idx)]);
}

TEST(Analysis, DataDependentLoopTaints)
{
    KernelBuilder kb("k");
    const Reg tid = kb.reg();
    const Reg i = kb.reg();
    const Reg acc = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.movi(acc, 0);
    kb.forRange(i, 0, tid, [&] { kb.iaddi(acc, acc, 1); }); // bound=tid
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_FALSE(a.uniformReg[unsigned(acc.idx)]);
}

TEST(Analysis, OldValueDeadWhenFullyOverwritten)
{
    KernelBuilder kb("k");
    const Reg tid = kb.reg();
    const Reg v = kb.reg();
    const Reg out = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.movi(v, 7);
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::LT, tid, 4);
    const int divergent_write = kb.here() + 1; // first body instruction
    kb.ifThen(p, [&] { kb.iaddi(v, tid, 1); });
    kb.mov(v, tid);   // convergent full overwrite: old v dead above
    kb.mov(out, v);
    kb.movi(out, 0);  // kills out
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_TRUE(a.oldValueDead[std::size_t(divergent_write)]);
}

TEST(Analysis, OldValueLiveWhenReadAfterDivergentWrite)
{
    KernelBuilder kb("k");
    const Reg tid = kb.reg();
    const Reg v = kb.reg();
    const Reg out = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.movi(v, 7);
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::LT, tid, 4);
    const int divergent_write = kb.here() + 1;
    kb.ifThen(p, [&] { kb.iaddi(v, tid, 1); });
    kb.mov(out, v); // reads v: inactive lanes observe the old value
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    EXPECT_FALSE(a.oldValueDead[std::size_t(divergent_write)]);
}

TEST(Analysis, StaticScalarSubsetOfConvergentUniform)
{
    KernelBuilder kb("k");
    const Reg ctaid = kb.reg();
    const Reg tid = kb.reg();
    const Reg a1 = kb.reg();
    const Reg a2 = kb.reg();
    kb.s2r(ctaid, SReg::CtaId);
    kb.s2r(tid, SReg::Tid);
    kb.imuli(a1, ctaid, 3); // static scalar
    kb.iadd(a2, a1, tid);   // not (tid source)
    const Kernel k = kb.build();

    const KernelAnalysis an = analyzeKernel(k);
    EXPECT_TRUE(an.staticScalar[0]);  // s2r ctaid
    EXPECT_FALSE(an.staticScalar[1]); // s2r tid
    EXPECT_TRUE(an.staticScalar[2]);
    EXPECT_FALSE(an.staticScalar[3]);
}

TEST(Analysis, ManyRegistersFallBackConservatively)
{
    KernelBuilder kb("k");
    std::vector<Reg> regs;
    for (int i = 0; i < 70; ++i)
        regs.push_back(kb.reg());
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::LT, tid, 4);
    kb.movi(regs[0], 1);
    kb.ifThen(p, [&] { kb.iaddi(regs[0], tid, 1); });
    const Kernel k = kb.build();

    const KernelAnalysis a = analyzeKernel(k);
    for (const bool dead : a.oldValueDead)
        EXPECT_FALSE(dead); // >64 regs: claim nothing
}

} // namespace
} // namespace gs
