/**
 * @file
 * Timing-model invariants: issue-width and pipeline-occupancy bounds,
 * dependence-chain latencies, and the exact +3-cycle cost of the
 * compression pipeline stages (§5.1).
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"

namespace gs
{
namespace
{

ArchConfig
oneSm(ArchMode mode = ArchMode::Baseline)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    cfg.mode = mode;
    return cfg;
}

/** Serial dependence chain of @p n IADDs in one warp. */
Kernel
chainKernel(unsigned n)
{
    KernelBuilder kb("chain");
    const Reg t = kb.reg();
    kb.s2r(t, SReg::Tid);
    for (unsigned i = 0; i < n; ++i)
        kb.iaddi(t, t, 1);
    const Reg addr = kb.reg();
    kb.movi(addr, 0x1000);
    kb.stg(addr, t);
    return kb.build();
}

/** Wide independent ALU work across many warps. */
Kernel
wideKernel(unsigned per_thread)
{
    KernelBuilder kb("wide");
    const Reg t = kb.reg();
    kb.s2r(t, SReg::Tid);
    const Reg a = kb.reg();
    const Reg b = kb.reg();
    kb.mov(a, t);
    kb.mov(b, t);
    for (unsigned i = 0; i < per_thread; i += 2) {
        kb.iaddi(a, a, 1); // two independent chains interleave
        kb.iaddi(b, b, 1);
    }
    const Reg addr = kb.reg();
    kb.shli(addr, t, 2);
    kb.iadd(a, a, b);
    kb.stg(addr, a);
    return kb.build();
}

TEST(TimingProperties, IssueWidthBoundsIpc)
{
    // 2 schedulers x 1 instruction: at most 2 warp instructions per
    // cycle per SM.
    Gpu gpu(oneSm());
    const EventCounts ev = gpu.launch(wideKernel(64), {8, 256});
    EXPECT_LE(ev.ipc(), 2.0 + 1e-9);
    EXPECT_GT(ev.ipc(), 0.5);
}

TEST(TimingProperties, AluOccupancyBound)
{
    // Two 16-lane ALU pipes, 2 cycles per warp: at most one ALU warp
    // instruction per cycle in steady state.
    Gpu gpu(oneSm());
    const EventCounts ev = gpu.launch(wideKernel(64), {8, 256});
    EXPECT_LE(double(ev.aluWarpInsts), double(ev.cycles) * 1.05);
}

TEST(TimingProperties, DependenceChainLatency)
{
    // A serial chain of N adds in a single warp costs ~latency per
    // link (no bypassing, §5.4).
    ArchConfig cfg = oneSm();
    Gpu g1(cfg), g2(cfg);
    const Cycle c200 = g1.launch(chainKernel(200), {1, 32}).cycles;
    const Cycle c100 = g2.launch(chainKernel(100), {1, 32}).cycles;
    const double per_link = double(c200 - c100) / 100.0;
    EXPECT_GT(per_link, cfg.aluLatency * 0.8);
    EXPECT_LT(per_link, cfg.aluLatency * 1.6);
}

TEST(TimingProperties, CompressionAddsThreeCyclesPerLink)
{
    // §5.1: +1 EBR read, +1 decompress, +1 compress on the dependence
    // path. Measured as the slope difference of the serial chain.
    Gpu b1(oneSm(ArchMode::Baseline)), b2(oneSm(ArchMode::Baseline));
    Gpu c1(oneSm(ArchMode::GScalarCompressOnly)),
        c2(oneSm(ArchMode::GScalarCompressOnly));
    const double base_slope =
        double(b1.launch(chainKernel(200), {1, 32}).cycles -
               b2.launch(chainKernel(100), {1, 32}).cycles) /
        100.0;
    const double comp_slope =
        double(c1.launch(chainKernel(200), {1, 32}).cycles -
               c2.launch(chainKernel(100), {1, 32}).cycles) /
        100.0;
    EXPECT_NEAR(comp_slope - base_slope, 3.0, 0.25);
}

TEST(TimingProperties, MoreWarpsHideLatency)
{
    // The same per-thread chain across many warps approaches the issue
    // bound instead of the latency bound.
    Gpu few(oneSm()), many(oneSm());
    const EventCounts e1 = few.launch(chainKernel(100), {1, 32});
    const EventCounts e2 = many.launch(chainKernel(100), {8, 256});
    EXPECT_GT(e2.ipc(), 8 * e1.ipc());
}

TEST(TimingProperties, SfuDispatchIsEightCycles)
{
    // A stream of independent SFU instructions from many warps is
    // bounded by the 4-lane pipe: one 32-thread warp per 8 cycles.
    KernelBuilder kb("sfu");
    const Reg t = kb.reg();
    kb.s2r(t, SReg::Tid);
    const Reg x = kb.reg();
    const Reg y = kb.reg();
    kb.emit1(Opcode::I2F, x, t);
    for (int i = 0; i < 16; ++i)
        kb.emit1(Opcode::RCP, y, x); // independent of each other
    const Reg addr = kb.reg();
    kb.shli(addr, t, 2);
    kb.stg(addr, y);
    const Kernel k = kb.build();

    Gpu gpu(oneSm());
    const EventCounts ev = gpu.launch(k, {8, 256});
    // 64 warps x 16 SFU ops x 8 cycles each on one pipe.
    EXPECT_GE(ev.cycles, Cycle(64 * 16 * 8));
}

TEST(TimingProperties, MemoryLatencyOrdering)
{
    // Serial dependent loads: L1-resident << DRAM-bound.
    auto loadChain = [](Addr stride) {
        KernelBuilder kb("loads");
        const Reg addr = kb.reg();
        kb.movi(addr, 0x100000);
        const Reg v = kb.reg();
        for (int i = 0; i < 20; ++i) {
            kb.ldg(v, addr);
            kb.iaddi(addr, addr, Word(stride)); // dependent on load? no:
            kb.iadd(addr, addr, v);             // make it dependent
        }
        const Reg out = kb.reg();
        kb.movi(out, 0x900000);
        kb.stg(out, v);
        return kb.build();
    };
    // Same line every time (v == 0): hits after the first access.
    Gpu hot(oneSm());
    const Cycle c_hot = hot.launch(loadChain(0), {1, 32}).cycles;

    // Distinct far lines: every access goes to DRAM.
    auto farChain = [] {
        KernelBuilder kb("far");
        const Reg addr = kb.reg();
        kb.movi(addr, 0x100000);
        const Reg v = kb.reg();
        for (int i = 0; i < 20; ++i) {
            kb.ldg(v, addr);
            kb.iaddi(addr, addr, 128 * 1024);
            kb.iadd(addr, addr, v); // dependent
        }
        const Reg out = kb.reg();
        kb.movi(out, 0x900000);
        kb.stg(out, v);
        return kb.build();
    };
    Gpu cold(oneSm());
    const Cycle c_cold = cold.launch(farChain(), {1, 32}).cycles;
    EXPECT_GT(c_cold, c_hot + 20 * 100); // ~dram latency per link
}

TEST(TimingProperties, ScalarOccupancyKnob)
{
    // All-scalar SFU stream: with the occupancy knob the SFU pipe
    // frees after 1 cycle instead of 8.
    KernelBuilder kb("sfu_scalar");
    const Reg c = kb.reg();
    kb.movf(c, 1.5f);
    const Reg y = kb.reg();
    for (int i = 0; i < 16; ++i)
        kb.emit1(Opcode::RCP, y, c);
    const Reg addr = kb.reg();
    kb.movi(addr, 0x1000);
    kb.stg(addr, y);
    const Kernel k = kb.build();

    ArchConfig slow = oneSm(ArchMode::GScalarFull);
    ArchConfig fast = slow;
    fast.scalarShortensOccupancy = true;
    Gpu g1(slow), g2(fast);
    const Cycle c_slow = g1.launch(k, {8, 256}).cycles;
    const Cycle c_fast = g2.launch(k, {8, 256}).cycles;
    EXPECT_GT(c_slow, 2 * c_fast);
}

} // namespace
} // namespace gs
