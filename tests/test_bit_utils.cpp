#include <gtest/gtest.h>

#include "common/bit_utils.hpp"

namespace gs
{
namespace
{

TEST(BitUtils, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0b1011), 3u);
    EXPECT_EQ(popCount(~LaneMask{0}), 64u);
}

TEST(BitUtils, FirstLane)
{
    EXPECT_EQ(firstLane(0b1000), 3u);
    EXPECT_EQ(firstLane(1), 0u);
    EXPECT_EQ(firstLane(LaneMask{1} << 63), 63u);
}

TEST(BitUtils, ByteOf)
{
    const Word w = 0xC04039C8;
    EXPECT_EQ(byteOf(w, 0), 0xC8);
    EXPECT_EQ(byteOf(w, 1), 0x39);
    EXPECT_EQ(byteOf(w, 2), 0x40);
    EXPECT_EQ(byteOf(w, 3), 0xC0);
}

TEST(BitUtils, WithByte)
{
    Word w = 0;
    w = withByte(w, 3, 0xAB);
    EXPECT_EQ(w, 0xAB000000u);
    w = withByte(w, 0, 0xCD);
    EXPECT_EQ(w, 0xAB0000CDu);
    w = withByte(w, 3, 0x00);
    EXPECT_EQ(w, 0x000000CDu);
}

TEST(BitUtils, LaneMaskLow)
{
    EXPECT_EQ(laneMaskLow(0), 0u);
    EXPECT_EQ(laneMaskLow(4), 0xfu);
    EXPECT_EQ(laneMaskLow(32), 0xffffffffull);
    EXPECT_EQ(laneMaskLow(64), ~LaneMask{0});
}

TEST(BitUtils, SingleLane)
{
    EXPECT_TRUE(isSingleLane(0b1000));
    EXPECT_FALSE(isSingleLane(0b1100));
    EXPECT_FALSE(isSingleLane(0));
}

TEST(BitUtils, CeilDivAndPow2)
{
    EXPECT_EQ(ceilDiv(10, 4), 3u);
    EXPECT_EQ(ceilDiv(8, 4), 2u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(48));
    EXPECT_FALSE(isPow2(0));
    EXPECT_EQ(log2Exact(128), 7u);
}

} // namespace
} // namespace gs
