#include <gtest/gtest.h>

#include "common/config.hpp"

namespace gs
{
namespace
{

TEST(Config, DefaultsValidate)
{
    ArchConfig cfg;
    cfg.validate(); // must not exit
}

TEST(Config, DerivedHelpers)
{
    ArchConfig cfg;
    EXPECT_EQ(cfg.warpsPerCta(256), 8u);
    EXPECT_EQ(cfg.warpsPerCta(40), 2u);
    EXPECT_EQ(cfg.groupsPerWarp(), 2u);
    EXPECT_EQ(cfg.dispatchCycles(16), 2u);
    EXPECT_EQ(cfg.dispatchCycles(4), 8u);

    cfg.warpSize = 64;
    EXPECT_EQ(cfg.groupsPerWarp(), 4u);
    EXPECT_EQ(cfg.dispatchCycles(16), 4u);
}

TEST(Config, ExtraCyclesFollowMode)
{
    ArchConfig cfg;
    EXPECT_EQ(cfg.extraCycles(), 0u);
    cfg.mode = ArchMode::GScalarFull;
    EXPECT_EQ(cfg.extraCycles(), 3u);
    cfg.mode = ArchMode::WarpedCompression;
    EXPECT_EQ(cfg.extraCycles(), 3u);
    cfg.mode = ArchMode::AluScalar;
    EXPECT_EQ(cfg.extraCycles(), 0u);
}

TEST(Config, ModePredicates)
{
    EXPECT_TRUE(usesByteMaskCompression(ArchMode::GScalarCompressOnly));
    EXPECT_FALSE(usesByteMaskCompression(ArchMode::WarpedCompression));
    EXPECT_TRUE(usesBdiCompression(ArchMode::WarpedCompression));
    EXPECT_TRUE(usesSingleBankScalarRf(ArchMode::AluScalar));
    EXPECT_FALSE(usesSingleBankScalarRf(ArchMode::GScalarFull));
    EXPECT_EQ(archModeName(ArchMode::GScalarFull), "gscalar");
}

TEST(Config, DescribeRendersTable1)
{
    const std::string s = ArchConfig{}.describe();
    EXPECT_NE(s.find("# of SMs"), std::string::npos);
    EXPECT_NE(s.find("15"), std::string::npos);
    EXPECT_NE(s.find("1.4GHz"), std::string::npos);
    EXPECT_NE(s.find("768KB"), std::string::npos);
}

TEST(ConfigDeath, RejectsBadWarpSize)
{
    ArchConfig cfg;
    cfg.warpSize = 48;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "power of two");
    cfg.warpSize = 128;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ConfigDeath, RejectsBadGranularity)
{
    ArchConfig cfg;
    cfg.checkGranularity = 12;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "granularity");
}

TEST(ConfigDeath, RejectsBadCacheGeometry)
{
    ArchConfig cfg;
    cfg.l1Bytes = 1000;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "L1");
}

} // namespace
} // namespace gs
