#include <gtest/gtest.h>

#include <vector>

#include "common/bit_utils.hpp"
#include "common/rng.hpp"
#include "compress/byte_mask_codec.hpp"

namespace gs
{
namespace
{

std::vector<Word>
lanes(std::initializer_list<Word> v)
{
    return {v};
}

TEST(ByteMaskCodec, PaperWorkedExample)
{
    // Section 3.1: C04039C0, C04039C8, ..., C04039F8 share their three
    // most significant bytes; enc = 1110.
    std::vector<Word> v;
    for (Word b = 0xC0; b <= 0xF8; b += 8)
        v.push_back(0xC0403900u | b);
    ASSERT_EQ(v.size(), 8u);

    const auto e = analyzeByteMask(v, laneMaskLow(8));
    EXPECT_EQ(e.commonMsbs, 3u);
    EXPECT_EQ(e.base, 0xC04039C0u);
    EXPECT_EQ(e.encBits(), 0b1110u);
    EXPECT_FALSE(e.isScalar());
}

TEST(ByteMaskCodec, ScalarValue)
{
    const std::vector<Word> v(32, 0xdeadbeef);
    const auto e = analyzeByteMask(v, laneMaskLow(32));
    EXPECT_EQ(e.commonMsbs, 4u);
    EXPECT_EQ(e.encBits(), 0b1111u);
    EXPECT_TRUE(e.isScalar());
}

TEST(ByteMaskCodec, NoCommonBytes)
{
    const auto e = analyzeByteMask(lanes({0x11000000, 0x22000000}),
                                   laneMaskLow(2));
    EXPECT_EQ(e.commonMsbs, 0u);
    EXPECT_EQ(e.encBits(), 0b0000u);
}

TEST(ByteMaskCodec, PrefixOnlyNotMiddleBytes)
{
    // byte[3] and byte[1] match but byte[2] differs: the encoding is a
    // prefix, so only byte[3] counts.
    const auto e = analyzeByteMask(lanes({0xAA11BB00, 0xAA22BB00}),
                                   laneMaskLow(2));
    EXPECT_EQ(e.commonMsbs, 1u);
    EXPECT_EQ(e.encBits(), 0b1000u);
}

TEST(ByteMaskCodec, SimilarValuesWithDifferentHex)
{
    // The paper notes BDI can beat byte-masking when nearby values
    // differ widely in hex: 0x3FFFFFFF vs 0x40000000 share nothing.
    const auto e = analyzeByteMask(lanes({0x3FFFFFFF, 0x40000000}),
                                   laneMaskLow(2));
    EXPECT_EQ(e.commonMsbs, 0u);
}

TEST(ByteMaskCodec, InactiveLanesIgnored)
{
    // AAABABC-style case from Fig. 6: with mask 10101100 only the A
    // lanes are compared.
    const Word A = 0x01020304, B = 0x99999999, C = 0x55555555;
    const std::vector<Word> v = {A, A, A, B, A, B, C, 0};
    // Active lanes: 2, 3 set? Mask bits: lane0..7 = 0,2,3,5 -> choose
    // lanes holding A only: lanes 0, 1, 2, 4.
    const LaneMask m = 0b00010111;
    const auto e = analyzeByteMask(v, m);
    EXPECT_EQ(e.commonMsbs, 4u);
    EXPECT_EQ(e.base, A);
}

TEST(ByteMaskCodec, MixedActiveLanesNotScalar)
{
    const std::vector<Word> v = {1, 1, 2, 1};
    EXPECT_EQ(analyzeByteMask(v, 0b1111).commonMsbs, 3u);
    EXPECT_EQ(analyzeByteMask(v, 0b1011).commonMsbs, 4u);
}

TEST(ByteMaskCodec, StoredBytes)
{
    EXPECT_EQ(byteMaskStoredBytes(4, 32), 4u);
    EXPECT_EQ(byteMaskStoredBytes(3, 32), 3u + 32u);
    EXPECT_EQ(byteMaskStoredBytes(0, 32), 128u);
    EXPECT_EQ(byteMaskStoredBytes(2, 16), 2u + 2u * 16u);
}

TEST(ByteMaskCodec, CompressDecompressRoundtripExample)
{
    std::vector<Word> v;
    for (Word b = 0; b < 16; ++b)
        v.push_back(0xC0403900u + b * 8);
    const auto stored = byteMaskCompress(v);
    EXPECT_EQ(stored.size(), byteMaskStoredBytes(3, 16));
    const auto out = byteMaskDecompress(stored, 3, 16);
    EXPECT_EQ(out, v);
}

/** Property sweep: roundtrip over every prefix class and lane count. */
class ByteMaskRoundtrip
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ByteMaskRoundtrip, Roundtrips)
{
    const unsigned prefix = std::get<0>(GetParam());
    const unsigned lanes_n = std::get<1>(GetParam());
    Rng rng(prefix * 131 + lanes_n);

    std::vector<Word> v(lanes_n);
    const Word base = rng.next32();
    for (auto &w : v) {
        w = base;
        // Randomise the low (4 - prefix) bytes; force at least one
        // difference right below the prefix so the class is exact.
        for (unsigned b = 0; b + prefix < 4; ++b)
            w = withByte(w, 3 - prefix - b, std::uint8_t(rng.next32()));
    }
    if (prefix < 4) {
        v[1] = withByte(v[1], 3 - prefix,
                        std::uint8_t(byteOf(v[0], 3 - prefix) + 1));
    }

    const auto enc = analyzeByteMask(v, laneMaskLow(lanes_n));
    ASSERT_LE(enc.commonMsbs, 4u);
    ASSERT_GE(enc.commonMsbs, prefix == 4 ? 4u : 0u);

    const auto stored = byteMaskCompress(v);
    const auto out = byteMaskDecompress(stored, enc.commonMsbs, lanes_n);
    EXPECT_EQ(out, v);
    EXPECT_EQ(stored.size(), byteMaskStoredBytes(enc.commonMsbs, lanes_n));
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefixesAndWidths, ByteMaskRoundtrip,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u),
                       ::testing::Values(2u, 8u, 16u, 32u, 64u)));

} // namespace
} // namespace gs
