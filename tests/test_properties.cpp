/**
 * @file
 * Cross-module property tests: invariants that must hold for arbitrary
 * register contents and masks, swept with parameterized randomness.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bit_utils.hpp"
#include "common/rng.hpp"
#include "compress/array_model.hpp"
#include "compress/bdi_codec.hpp"
#include "compress/byte_mask_codec.hpp"
#include "compress/reg_meta.hpp"
#include "scalar/eligibility.hpp"

namespace gs
{
namespace
{

constexpr unsigned kWarp = 32;
const LaneMask kFull = laneMaskLow(kWarp);
const RfGeometry kGeo{32, 16};

std::vector<Word>
randomPattern(Rng &rng)
{
    std::vector<Word> v(kWarp);
    // Mix of pattern families so all enc classes appear.
    const auto family = rng.below(5);
    const Word base = rng.next32();
    for (unsigned i = 0; i < kWarp; ++i) {
        switch (family) {
          case 0: v[i] = base; break;
          case 1: v[i] = base + Word(rng.below(256)); break;
          case 2: v[i] = base + Word(rng.below(65536)); break;
          case 3: v[i] = base + i * 4; break;
          default: v[i] = rng.next32(); break;
        }
    }
    return v;
}

LaneMask
randomMask(Rng &rng)
{
    LaneMask m = rng.next32();
    if (m == 0)
        m = 1;
    return m & kFull;
}

class RandomizedProperties : public ::testing::TestWithParam<unsigned>
{
  protected:
    Rng rng{GetParam() * 0x9e3779b9ull + 12345};
};

TEST_P(RandomizedProperties, EncodingConsistentWithValues)
{
    for (int iter = 0; iter < 50; ++iter) {
        const auto v = randomPattern(rng);
        const LaneMask m = randomMask(rng);
        const auto e = analyzeByteMask(v, m);

        // Every active lane must share exactly the claimed MSB prefix.
        const unsigned base_lane = firstLane(m);
        for (unsigned lane = 0; lane < kWarp; ++lane) {
            if (!(m & (LaneMask{1} << lane)))
                continue;
            for (unsigned b = 0; b < e.commonMsbs; ++b)
                EXPECT_EQ(byteOf(v[lane], 3 - b),
                          byteOf(v[base_lane], 3 - b));
        }
        // Maximality: if commonMsbs < 4, some active lane differs at
        // the next byte.
        if (e.commonMsbs < 4) {
            bool differs = false;
            for (unsigned lane = 0; lane < kWarp; ++lane)
                if (m & (LaneMask{1} << lane))
                    differs |= byteOf(v[lane], 3 - e.commonMsbs) !=
                               byteOf(v[base_lane], 3 - e.commonMsbs);
            EXPECT_TRUE(differs);
        }
    }
}

TEST_P(RandomizedProperties, MaskingNeverLowersEncoding)
{
    // Comparing fewer lanes can only find more common bytes.
    for (int iter = 0; iter < 50; ++iter) {
        const auto v = randomPattern(rng);
        const LaneMask m = randomMask(rng);
        const LaneMask sub = m & randomMask(rng);
        if (sub == 0)
            continue;
        EXPECT_GE(analyzeByteMask(v, sub).commonMsbs,
                  analyzeByteMask(v, m).commonMsbs);
    }
}

TEST_P(RandomizedProperties, SoftwareCodecRoundtrips)
{
    for (int iter = 0; iter < 50; ++iter) {
        const auto v = randomPattern(rng);
        const auto enc = analyzeByteMask(v, kFull);
        const auto stored = byteMaskCompress(v);
        EXPECT_EQ(byteMaskDecompress(stored, enc.commonMsbs, kWarp), v);
    }
}

TEST_P(RandomizedProperties, StoredSizesNeverExceedRaw)
{
    for (int iter = 0; iter < 50; ++iter) {
        const auto v = randomPattern(rng);
        const LaneMask m = randomMask(rng);
        const RegMeta meta = analyzeWrite(v, m, kFull, 16);
        EXPECT_LE(byteMaskRegStoredBytes(kGeo, meta, true),
                  kGeo.regBytes());
        EXPECT_LE(meta.bdiBytes, kGeo.regBytes());
    }
}

TEST_P(RandomizedProperties, AccessCostsBounded)
{
    for (int iter = 0; iter < 50; ++iter) {
        const auto v = randomPattern(rng);
        const LaneMask wm = randomMask(rng);
        const RegMeta meta = analyzeWrite(v, wm, kFull, 16);
        const LaneMask rm = randomMask(rng);

        for (const bool half : {false, true}) {
            const auto rd = compressedRead(kGeo, meta, rm, half, false);
            EXPECT_LE(rd.arrays, kGeo.byteArrays());
            EXPECT_LE(rd.bytes, kGeo.regBytes());
            const auto wr = compressedWrite(kGeo, meta, half, false);
            EXPECT_LE(wr.arrays, kGeo.byteArrays());
        }
        const auto b = bdiRead(kGeo, meta, rm);
        EXPECT_LE(b.arrays, kGeo.byteArrays());
        // Baseline never beaten by a *larger* compressed activation.
        EXPECT_LE(compressedRead(kGeo, meta, kFull, true, false).arrays,
                  baselineRead(kGeo).arrays);
    }
}

TEST_P(RandomizedProperties, ScalarEligibilityImpliesUniformValues)
{
    // If classifyScalar grants any full/divergent scalar tier, all
    // active lanes of every source must hold identical words.
    for (int iter = 0; iter < 50; ++iter) {
        const auto v0 = randomPattern(rng);
        const auto v1 = randomPattern(rng);
        const LaneMask wm = randomMask(rng);
        const LaneMask active = rng.chance(0.5) ? kFull : wm;

        const RegMeta m0 = analyzeWrite(v0, wm, kFull, 16);
        const RegMeta m1 = analyzeWrite(v1, kFull, kFull, 16);
        const RegMeta srcs[] = {m0, m1};

        Instruction add;
        add.op = Opcode::IADD;
        add.dst = 0;
        add.src[0] = 1;
        add.src[1] = 2;

        EligibilityContext c;
        c.active = active;
        c.fullMask = kFull;
        c.granularity = 16;
        c.warpSize = kWarp;
        const auto e = classifyScalar(add, srcs, c);

        if (e.tier == ScalarTier::FullAlu ||
            e.tier == ScalarTier::Divergent) {
            const unsigned lane0 = firstLane(active);
            for (unsigned lane = 0; lane < kWarp; ++lane) {
                if (!(active & (LaneMask{1} << lane)))
                    continue;
                EXPECT_EQ(v0[lane], v0[lane0]) << "tier "
                                               << tierName(e.tier);
                EXPECT_EQ(v1[lane], v1[lane0]);
            }
        }
    }
}

TEST_P(RandomizedProperties, BdiSizeValid)
{
    for (int iter = 0; iter < 50; ++iter) {
        const auto v = randomPattern(rng);
        const auto e = analyzeBdi(v, kFull);
        EXPECT_EQ(e.storedBytes, bdiStoredBytes(e.mode, kWarp));
        // Scalar values always compress to at most 4 bytes under BDI.
        if (analyzeByteMask(v, kFull).isScalar()) {
            EXPECT_LE(e.storedBytes, 4u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedProperties,
                         ::testing::Range(0u, 8u));

} // namespace
} // namespace gs
