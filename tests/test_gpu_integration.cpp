#include <gtest/gtest.h>

#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"

namespace gs
{
namespace
{

/** out[gtid] = gtid + 100. */
Kernel
gridKernel()
{
    KernelBuilder kb("grid");
    const Reg tid = kb.reg();
    const Reg ctaid = kb.reg();
    const Reg ntid = kb.reg();
    const Reg gtid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.s2r(ctaid, SReg::CtaId);
    kb.s2r(ntid, SReg::NTid);
    kb.imad(gtid, ctaid, ntid, tid);
    const Reg v = kb.reg();
    kb.iaddi(v, gtid, 100);
    const Reg addr = kb.reg();
    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, 0x100000);
    kb.stg(addr, v);
    return kb.build();
}

TEST(GpuIntegration, EveryThreadOfEveryCtaRuns)
{
    ArchConfig cfg;
    cfg.numSms = 4;
    Gpu gpu(cfg);
    gpu.launch(gridKernel(), {20, 96});
    for (unsigned g = 0; g < 20 * 96; ++g)
        EXPECT_EQ(gpu.memory().readWord(0x100000 + 4 * g), g + 100)
            << "gtid " << g;
}

TEST(GpuIntegration, MoreCtasThanCapacity)
{
    ArchConfig cfg;
    cfg.numSms = 2;
    cfg.maxCtasPerSm = 2;
    Gpu gpu(cfg);
    gpu.launch(gridKernel(), {33, 64}); // waves of CTAs
    for (unsigned g = 0; g < 33 * 64; ++g)
        ASSERT_EQ(gpu.memory().readWord(0x100000 + 4 * g), g + 100);
}

TEST(GpuIntegration, EventCountsScaleWithGrid)
{
    ArchConfig cfg;
    cfg.numSms = 4;
    Gpu g1(cfg), g2(cfg);
    const EventCounts e1 = g1.launch(gridKernel(), {4, 64});
    const EventCounts e2 = g2.launch(gridKernel(), {8, 64});
    EXPECT_EQ(e2.warpInsts, 2 * e1.warpInsts);
    EXPECT_EQ(e2.threadInsts, 2 * e1.threadInsts);
}

TEST(GpuIntegration, DeterministicAcrossRuns)
{
    ArchConfig cfg;
    cfg.numSms = 3;
    Gpu a(cfg), b(cfg);
    const EventCounts e1 = a.launch(gridKernel(), {9, 128});
    const EventCounts e2 = b.launch(gridKernel(), {9, 128});
    EXPECT_EQ(e1.cycles, e2.cycles);
    EXPECT_EQ(e1.warpInsts, e2.warpInsts);
    EXPECT_EQ(e1.rfArrayReads, e2.rfArrayReads);
    EXPECT_EQ(e1.l1Misses, e2.l1Misses);
}

TEST(GpuIntegration, MultiSmFasterThanSingleSm)
{
    ArchConfig one;
    one.numSms = 1;
    ArchConfig four;
    four.numSms = 4;
    Gpu g1(one), g4(four);
    const EventCounts e1 = g1.launch(gridKernel(), {16, 256});
    const EventCounts e4 = g4.launch(gridKernel(), {16, 256});
    EXPECT_LT(e4.cycles, e1.cycles);
    EXPECT_EQ(e1.warpInsts, e4.warpInsts);
}

TEST(GpuIntegration, WarpSize64Works)
{
    ArchConfig cfg;
    cfg.numSms = 2;
    cfg.warpSize = 64;
    Gpu gpu(cfg);
    gpu.launch(gridKernel(), {6, 128});
    for (unsigned g = 0; g < 6 * 128; ++g)
        ASSERT_EQ(gpu.memory().readWord(0x100000 + 4 * g), g + 100);
}

TEST(GpuIntegration, SchedulerPoliciesBothComplete)
{
    for (const SchedPolicy p :
         {SchedPolicy::GreedyThenOldest, SchedPolicy::LooseRoundRobin}) {
        ArchConfig cfg;
        cfg.numSms = 2;
        cfg.schedPolicy = p;
        Gpu gpu(cfg);
        const EventCounts ev = gpu.launch(gridKernel(), {8, 128});
        EXPECT_GT(ev.warpInsts, 0u);
        for (unsigned g = 0; g < 8 * 128; ++g)
            ASSERT_EQ(gpu.memory().readWord(0x100000 + 4 * g), g + 100);
    }
}

TEST(GpuIntegrationDeath, RejectsEmptyLaunch)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    Gpu gpu(cfg);
    const Kernel k = gridKernel();
    EXPECT_EXIT(gpu.launch(k, {0, 32}), ::testing::ExitedWithCode(1),
                "empty launch");
}

TEST(GpuIntegrationDeath, RejectsOversizedCta)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    Gpu gpu(cfg);
    const Kernel k = gridKernel();
    EXPECT_EXIT(gpu.launch(k, {1, 4096}), ::testing::ExitedWithCode(1),
                "exceeds");
}

} // namespace
} // namespace gs
