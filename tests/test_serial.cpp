/**
 * @file
 * Wire-format tests (store/serial.hpp): exact round trips for
 * ArchConfig and RunResult, and rejection of every truncation, every
 * single-bit flip, and every header mismatch. The format feeds both the
 * disk cache and the network daemon, so "malformed input returns
 * nullopt" is a hard guarantee here, not a best effort.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "store/serial.hpp"

using namespace gs;

namespace
{

/** A config with every field moved off its default. */
ArchConfig
mutatedConfig()
{
    ArchConfig c;
    c.mode = ArchMode::GScalarNoDiv;
    c.numSms = 7;
    c.warpSize = 64;
    c.simtWidth = 8;
    c.sfuWidth = 2;
    c.numAluPipes = 3;
    c.maxThreadsPerSm = 2048;
    c.maxCtasPerSm = 12;
    c.numVregsPerSm = 49152;
    c.numBanks = 8;
    c.arraysPerBank = 2;
    c.numCollectors = 6;
    c.numSchedulers = 4;
    c.schedPolicy = SchedPolicy::LooseRoundRobin;
    c.checkGranularity = 2;
    c.halfRegisterCompression = !c.halfRegisterCompression;
    c.scalarRfBanks = 3;
    c.insertSpecialMoves = !c.insertSpecialMoves;
    c.compilerAssistedSmov = !c.compilerAssistedSmov;
    c.scalarShortensOccupancy = !c.scalarShortensOccupancy;
    c.aluLatency = 6;
    c.mulLatency = 7;
    c.divLatency = 30;
    c.sfuLatency = 9;
    c.lineBytes = 64;
    c.l1Bytes = 32 * 1024;
    c.l1Assoc = 2;
    c.l1Latency = 31;
    c.l1MshrEntries = 24;
    c.l2Bytes = 512 * 1024;
    c.l2Assoc = 4;
    c.l2Latency = 150;
    c.dramLatency = 350;
    c.memChannels = 3;
    c.dramRequestsPerCycle = 1.25;
    c.sharedLatency = 25;
    c.sharedBanks = 16;
    c.coreClockGhz = 1.1;
    c.maxCycles = 123456789;
    c.seed = 0xdeadbeefcafeull;
    return c;
}

RunResult
filledResult()
{
    RunResult r;
    r.workload = "BT";
    r.mode = ArchMode::GScalarFull;
    r.wallSeconds = 1.5;
    r.ev.cycles = 8618;
    r.ev.warpInsts = 141771;
    r.ev.aluEnergyUnits = 3.25;
    r.ev.sfuEnergyUnits = 0.5;
    r.power.frontendW = 1.0;
    r.power.executeW = 2.0;
    r.power.sfuW = 0.25;
    r.power.regFileW = 0.75;
    r.power.codecW = 0.0625;
    r.power.memoryW = 3.5;
    r.power.staticW = 5.0;
    r.power.totalW = 12.5625;
    r.power.ipc = 16.5;
    r.power.seconds = 0.01;
    return r;
}

} // namespace

TEST(Serial, ConfigRoundTripsExactly)
{
    const ArchConfig orig = mutatedConfig();
    const std::vector<std::uint8_t> blob = serializeConfig(orig);

    std::string err;
    const std::optional<ArchConfig> back =
        deserializeConfig(blob.data(), blob.size(), &err);
    ASSERT_TRUE(back.has_value()) << err;

    // Exactness via the serialized form (covers every field) plus the
    // semantic fingerprint.
    EXPECT_EQ(serializeConfig(*back), blob);
    EXPECT_EQ(back->fingerprint(), orig.fingerprint());
    EXPECT_EQ(back->mode, orig.mode);
    EXPECT_EQ(back->warpSize, orig.warpSize);
    EXPECT_EQ(back->seed, orig.seed);
    EXPECT_DOUBLE_EQ(back->coreClockGhz, orig.coreClockGhz);
}

TEST(Serial, DefaultConfigRoundTrips)
{
    const ArchConfig orig;
    const std::vector<std::uint8_t> blob = serializeConfig(orig);
    const std::optional<ArchConfig> back = deserializeConfig(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(serializeConfig(*back), blob);
}

TEST(Serial, ResultRoundTripsExactly)
{
    const RunResult orig = filledResult();
    const std::vector<std::uint8_t> blob = serializeResult(orig);

    std::string err;
    const std::optional<RunResult> back =
        deserializeResult(blob.data(), blob.size(), &err);
    ASSERT_TRUE(back.has_value()) << err;

    EXPECT_EQ(serializeResult(*back), blob);
    EXPECT_EQ(back->workload, orig.workload);
    EXPECT_EQ(back->mode, orig.mode);
    EXPECT_EQ(back->ev.cycles, orig.ev.cycles);
    EXPECT_EQ(back->ev.warpInsts, orig.ev.warpInsts);
    EXPECT_DOUBLE_EQ(back->ev.aluEnergyUnits, orig.ev.aluEnergyUnits);
    EXPECT_DOUBLE_EQ(back->power.totalW, orig.power.totalW);
    EXPECT_DOUBLE_EQ(back->wallSeconds, orig.wallSeconds);
}

TEST(Serial, EveryTruncationIsRejected)
{
    const std::vector<std::uint8_t> blob =
        serializeResult(filledResult());
    for (std::size_t n = 0; n < blob.size(); ++n) {
        const std::optional<RunResult> back =
            deserializeResult(blob.data(), n);
        EXPECT_FALSE(back.has_value())
            << "prefix of " << n << "/" << blob.size()
            << " bytes deserialized";
    }
}

TEST(Serial, EveryBitFlipIsRejected)
{
    const std::vector<std::uint8_t> blob =
        serializeResult(filledResult());
    for (std::size_t i = 0; i < blob.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> bad = blob;
            bad[i] = std::uint8_t(bad[i] ^ (1u << bit));
            const std::optional<RunResult> back =
                deserializeResult(bad.data(), bad.size());
            EXPECT_FALSE(back.has_value())
                << "bit " << bit << " of byte " << i
                << " flipped undetected";
        }
    }
}

TEST(Serial, ConfigTruncationAndCorruptionRejected)
{
    const std::vector<std::uint8_t> blob =
        serializeConfig(mutatedConfig());
    for (std::size_t n = 0; n < blob.size(); ++n)
        EXPECT_FALSE(deserializeConfig(blob.data(), n).has_value());
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::vector<std::uint8_t> bad = blob;
        bad[i] ^= 0x10;
        EXPECT_FALSE(deserializeConfig(bad).has_value())
            << "byte " << i;
    }
}

TEST(Serial, WrongKindIsRejected)
{
    // A valid Config blob presented where a Result is expected.
    const std::vector<std::uint8_t> blob = serializeConfig(ArchConfig{});
    std::string err;
    EXPECT_FALSE(
        deserializeResult(blob.data(), blob.size(), &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Serial, EmptyAndGarbageRejected)
{
    std::string err;
    EXPECT_FALSE(deserializeConfig(nullptr, 0, &err).has_value());
    const std::vector<std::uint8_t> junk(64, 0xa5);
    EXPECT_FALSE(deserializeConfig(junk).has_value());
    EXPECT_FALSE(deserializeResult(junk).has_value());
}

TEST(Serial, UnknownTagsAreSkipped)
{
    // A future writer may append fields; an old reader must keep its
    // defaults for tags it does not know rather than fail.
    ByteWriter w(BlobKind::Config);
    w.field(std::uint16_t(9999), std::uint64_t(42));
    const std::vector<std::uint8_t> blob = w.finish();

    std::string err;
    const std::optional<ArchConfig> back =
        deserializeConfig(blob.data(), blob.size(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->fingerprint(), ArchConfig{}.fingerprint());
}

TEST(Serial, OutOfRangeEnumIsRejected)
{
    // Tag 1 is ArchConfig::mode; 99 names no ArchMode.
    ByteWriter w(BlobKind::Config);
    w.field(std::uint16_t(1), std::uint32_t(99));
    const std::vector<std::uint8_t> blob = w.finish();
    EXPECT_FALSE(deserializeConfig(blob).has_value());
}

TEST(Serial, ChecksumIsFnv1a)
{
    // Pin the trailer algorithm: FNV-1a with the standard offset basis,
    // so independently written readers agree.
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
}
