/**
 * @file
 * Generated workloads through the ExperimentEngine: duplicate GenSpecs
 * must collapse onto one simulation via the fingerprint-keyed run
 * cache (the canonical spec name carries every knob, the ArchConfig
 * fingerprint the rest of the key), whether submitted as Workload
 * objects or resolved from their "gen:..." names; distinct specs and
 * distinct configurations must not collapse.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "gen/generator.hpp"
#include "gen/spec.hpp"
#include "harness/engine.hpp"

using namespace gs;

namespace
{

GenSpec
tinySpec(std::uint64_t seed)
{
    GenSpec spec;
    spec.seed = seed;
    spec.ops = 6;
    spec.ctas = 1;
    spec.tpc = 16;
    return spec;
}

ArchConfig
tinyConfig(ArchMode mode = ArchMode::Baseline)
{
    ArchConfig cfg;
    cfg.mode = mode;
    cfg.numSms = 1;
    cfg.maxCycles = 5'000'000;
    return cfg;
}

} // namespace

TEST(GenEngine, DuplicateSpecsDedupeOntoOneRun)
{
    registerGenWorkloads();
    ExperimentEngine engine(2);
    const ArchConfig cfg = tinyConfig();

    const GenSpec spec = tinySpec(31);
    std::vector<std::shared_future<RunResult>> runs;
    runs.push_back(engine.submit(makeGenWorkload(spec), cfg));
    runs.push_back(engine.submit(makeGenWorkload(spec), cfg)); // dup
    runs.push_back(engine.submit(spec.toName(), cfg));         // dup
    const GenSpec other = tinySpec(32);
    runs.push_back(engine.submit(makeGenWorkload(other), cfg));

    for (const std::shared_future<RunResult> &f : runs) {
        const RunResult r = f.get();
        EXPECT_TRUE(r.ok()) << r.error;
    }

    const CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.misses, 2u); // spec and other, once each
    EXPECT_EQ(stats.hits, 2u);   // both duplicate submissions
    EXPECT_EQ(stats.runFailures, 0u);

    // Duplicates share the one simulation's identical counters.
    EXPECT_EQ(runs[0].get().ev.cycles, runs[1].get().ev.cycles);
    EXPECT_EQ(runs[0].get().ev.cycles, runs[2].get().ev.cycles);
}

TEST(GenEngine, DifferentConfigurationsDoNotCollapse)
{
    registerGenWorkloads();
    ExperimentEngine engine(2);
    const GenSpec spec = tinySpec(33);

    const RunResult base =
        engine.run(makeGenWorkload(spec), tinyConfig(ArchMode::Baseline));
    EXPECT_TRUE(base.ok()) << base.error;
    const RunResult full = engine.run(makeGenWorkload(spec),
                                      tinyConfig(ArchMode::GScalarFull));
    EXPECT_TRUE(full.ok()) << full.error;

    const CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 0u);
}

TEST(GenEngine, StressManyDuplicatesFewUniques)
{
    registerGenWorkloads();
    ExperimentEngine engine(4);
    const ArchConfig cfg = tinyConfig();

    constexpr unsigned kUnique = 5;
    constexpr unsigned kRounds = 6;
    std::vector<std::shared_future<RunResult>> runs;
    for (unsigned round = 0; round < kRounds; ++round)
        for (unsigned u = 0; u < kUnique; ++u)
            runs.push_back(
                engine.submit(makeGenWorkload(tinySpec(100 + u)), cfg));

    for (const std::shared_future<RunResult> &f : runs)
        EXPECT_TRUE(f.get().ok()) << f.get().error;

    const CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.misses, std::uint64_t(kUnique));
    EXPECT_EQ(stats.hits, std::uint64_t(kUnique * (kRounds - 1)));
}

TEST(GenEngine, EqualSpecsShareAFingerprintDistinctSpecsDoNot)
{
    const GenSpec a = tinySpec(41);
    const GenSpec b = tinySpec(41);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.toName(), b.toName());

    const GenSpec c = tinySpec(42);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    EXPECT_NE(a.toName(), c.toName());
}
