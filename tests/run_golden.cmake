# Golden-output regression: run every deterministic bench driver in
# alphabetical order and byte-compare the concatenated stdout against
# docs/bench_reference_output.txt. stderr (throughput, engine stats) is
# ignored — only the figure/table content is pinned. All drivers share a
# persistent run cache under WORK_DIR, which both speeds the sweep up
# (the drivers overlap heavily in (workload, config) points) and
# exercises the disk cache across processes.
#
# Usage:
#   cmake -DBENCH_DIR=<dir-with-driver-binaries>
#         -DREFERENCE=<docs/bench_reference_output.txt>
#         -DWORK_DIR=<scratch-dir>
#         -P run_golden.cmake

foreach(var BENCH_DIR REFERENCE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_golden.cmake: ${var} not set")
    endif()
endforeach()

# micro_codec is google-benchmark timing output and thus nondeterministic;
# every other driver is pinned.
set(drivers
    ablation_bank_count
    ablation_half_register
    ablation_scalar_banks
    ablation_scalar_occupancy
    ablation_smov_compiler
    ablation_warp_width
    fig01_divergence_mix
    fig08_rf_distribution
    fig09_scalar_eligibility
    fig10_warp_size
    fig11_power_efficiency
    fig12_rf_power
    stat_affine_opportunity
    stat_compiler_scalar
    stat_compression_ratio
    stat_special_move_overhead
    table3_codec_cost)

file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{GS_CACHE_DIR} "${WORK_DIR}/cache")
set(actual "${WORK_DIR}/golden_actual.txt")
file(WRITE "${actual}" "")

foreach(d ${drivers})
    execute_process(
        COMMAND "${BENCH_DIR}/${d}"
        OUTPUT_FILE "${WORK_DIR}/${d}.out"
        ERROR_VARIABLE driver_err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${d} exited with ${rc}:\n${driver_err}")
    endif()
    file(READ "${WORK_DIR}/${d}.out" chunk)
    file(APPEND "${actual}" "${chunk}")
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${actual}" "${REFERENCE}"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    # Show a readable diff before failing (diff(1) exists everywhere
    # this POSIX-only project builds).
    execute_process(
        COMMAND diff -u "${REFERENCE}" "${actual}"
        OUTPUT_VARIABLE delta
        RESULT_VARIABLE ignored)
    message(FATAL_ERROR
        "bench output drifted from ${REFERENCE}:\n${delta}\n"
        "If the change is intended, regenerate the reference by "
        "running the drivers above in order and saving stdout.")
endif()
