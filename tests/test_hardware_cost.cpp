#include <gtest/gtest.h>

#include "power/hardware_cost.hpp"

namespace gs
{
namespace
{

/** Paper Table 3 reference values. */
constexpr double kPaperDecompArea = 7332, kPaperDecompDelay = 0.35,
                 kPaperDecompPower = 15.86;
constexpr double kPaperCompArea = 11624, kPaperCompDelay = 0.67,
                 kPaperCompPower = 16.22;

void
expectWithin(double value, double reference, double tolerance,
             const char *what)
{
    EXPECT_NEAR(value, reference, reference * tolerance) << what;
}

TEST(HardwareCost, DecompressorMatchesTable3)
{
    const BlockCost c = decompressorCost();
    expectWithin(c.areaUm2, kPaperDecompArea, 0.15, "area");
    expectWithin(c.delayNs, kPaperDecompDelay, 0.15, "delay");
    expectWithin(c.powerMw, kPaperDecompPower, 0.15, "power");
}

TEST(HardwareCost, CompressorMatchesTable3)
{
    const BlockCost c = compressorCost();
    expectWithin(c.areaUm2, kPaperCompArea, 0.15, "area");
    expectWithin(c.delayNs, kPaperCompDelay, 0.15, "delay");
    expectWithin(c.powerMw, kPaperCompPower, 0.20, "power");
}

TEST(HardwareCost, CompressorBiggerAndSlowerThanDecompressor)
{
    const BlockCost comp = compressorCost();
    const BlockCost decomp = decompressorCost();
    EXPECT_GT(comp.areaUm2, decomp.areaUm2);
    EXPECT_GT(comp.delayNs, decomp.delayNs);
}

TEST(HardwareCost, BothMeetCycleTimeAt1_4GHz)
{
    // Section 3: one cycle suffices for each stage at 1.4 GHz.
    const double cycle_ns = 1.0 / 1.4;
    EXPECT_LT(compressorCost().delayNs, cycle_ns);
    EXPECT_LT(decompressorCost().delayNs, cycle_ns);
}

TEST(HardwareCost, OurCompressorCheaperThanBdi)
{
    // Section 5.3: our codec occupies ~52 % of the BDI implementation.
    const double ratio =
        compressorCost().areaUm2 / bdiCompressorCost().areaUm2;
    EXPECT_GT(ratio, 0.40);
    EXPECT_LT(ratio, 0.70);
}

TEST(HardwareCost, PerSmOverheadsMatchSection51)
{
    const SmOverheads o = smOverheads();
    EXPECT_EQ(o.decompressorsPerSm, 16u); // one per operand collector
    EXPECT_EQ(o.compressorsPerSm, 4u);    // one per execution pipeline
    expectWithin(o.codecPowerPerSmW, 0.32, 0.25, "per-SM codec power");
    expectWithin(o.codecAreaPerSmMm2, 0.16, 0.15, "per-SM codec area");
    EXPECT_DOUBLE_EQ(o.rfAreaOverheadSingle, 0.03);
    EXPECT_DOUBLE_EQ(o.rfAreaOverheadHalf, 0.07);
}

TEST(HardwareCost, ScalesWithGeometry)
{
    CodecGeometry wide;
    wide.lanes = 64;
    wide.pipelineBits = 2048;
    EXPECT_GT(compressorCost(wide).areaUm2, compressorCost().areaUm2);
    EXPECT_GT(decompressorCost(wide).powerMw,
              decompressorCost().powerMw);
}

TEST(HardwareCost, FasterClockMorePower)
{
    TechParams t;
    t.clockGhz = 2.8;
    EXPECT_NEAR(compressorCost({}, t).powerMw,
                2 * compressorCost().powerMw, 1e-6);
}

TEST(HardwareCost, DescribeShowsModelAndPaper)
{
    const std::string s = describeHardwareCost();
    EXPECT_NE(s.find("Table 3"), std::string::npos);
    EXPECT_NE(s.find("7332"), std::string::npos);
    EXPECT_NE(s.find("decompressor"), std::string::npos);
}

} // namespace
} // namespace gs
