/**
 * @file
 * Tests for the finer memory-model features: shared-memory bank
 * conflicts and the L1 MSHR limit.
 */

#include <gtest/gtest.h>

#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"

namespace gs
{
namespace
{

ArchConfig
oneSm()
{
    ArchConfig cfg;
    cfg.numSms = 1;
    return cfg;
}

/** Each thread LDS's word (tid * stride_words). */
Kernel
sharedStrideKernel(unsigned stride_words)
{
    KernelBuilder kb("shared_stride");
    kb.shared(32 * stride_words * 4 + 4);
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg saddr = kb.reg();
    kb.imuli(saddr, tid, stride_words * 4);
    const Reg v = kb.reg();
    kb.lds(v, saddr);
    const Reg out = kb.reg();
    kb.shli(out, tid, 2);
    kb.iaddi(out, out, 0x10000);
    kb.stg(out, v);
    return kb.build();
}

TEST(SharedBankConflicts, UnitStrideConflictFree)
{
    Gpu gpu(oneSm());
    const EventCounts ev = gpu.launch(sharedStrideKernel(1), {1, 32});
    EXPECT_EQ(ev.sharedAccesses, 1u);
    EXPECT_EQ(ev.sharedBankConflicts, 0u);
}

TEST(SharedBankConflicts, EvenStrideConflicts)
{
    // Stride 2 over 32 banks: two words per bank -> 1 extra cycle.
    Gpu g2(oneSm());
    EXPECT_EQ(g2.launch(sharedStrideKernel(2), {1, 32})
                  .sharedBankConflicts,
              1u);
    // Stride 32: all 32 words land in bank 0 -> 31 extra cycles.
    Gpu g32(oneSm());
    EXPECT_EQ(g32.launch(sharedStrideKernel(32), {1, 32})
                  .sharedBankConflicts,
              31u);
}

TEST(SharedBankConflicts, BroadcastConflictFree)
{
    // All lanes read the same word: a broadcast, not a conflict.
    KernelBuilder kb("shared_bcast");
    kb.shared(64);
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg saddr = kb.reg();
    kb.movi(saddr, 8);
    const Reg v = kb.reg();
    kb.lds(v, saddr);
    const Reg out = kb.reg();
    kb.shli(out, tid, 2);
    kb.iaddi(out, out, 0x10000);
    kb.stg(out, v);
    const Kernel k = kb.build();

    Gpu gpu(oneSm());
    EXPECT_EQ(gpu.launch(k, {1, 32}).sharedBankConflicts, 0u);
}

TEST(SharedBankConflicts, ConflictsCostCycles)
{
    Gpu a(oneSm()), b(oneSm());
    // One warp, serial dependence on the loaded value: latency visible.
    const EventCounts e1 = a.launch(sharedStrideKernel(1), {1, 32});
    const EventCounts e32 = b.launch(sharedStrideKernel(32), {1, 32});
    EXPECT_GT(e32.cycles, e1.cycles);
}

/** Every warp gathers from widely-scattered lines (all L1 misses). */
Kernel
scatterKernel(unsigned loads)
{
    KernelBuilder kb("scatter");
    const Reg tid = kb.reg();
    const Reg ctaid = kb.reg();
    const Reg ntid = kb.reg();
    const Reg gtid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    kb.s2r(ctaid, SReg::CtaId);
    kb.s2r(ntid, SReg::NTid);
    kb.imad(gtid, ctaid, ntid, tid);

    const Reg addr = kb.reg();
    const Reg v = kb.reg();
    const Reg acc = kb.reg();
    kb.movi(acc, 0);
    // Per-lane stride of one line, advancing far each iteration: every
    // load of every warp touches 32 distinct uncached lines.
    kb.imuli(addr, gtid, 128);
    kb.iaddi(addr, addr, 0x100000);
    for (unsigned i = 0; i < loads; ++i) {
        kb.ldg(v, addr);
        kb.iadd(acc, acc, v);
        kb.iaddi(addr, addr, 128 * 1024);
    }
    const Reg out = kb.reg();
    kb.shli(out, gtid, 2);
    kb.stg(out, acc);
    return kb.build();
}

TEST(L1Mshr, TinyMshrStallsInjections)
{
    ArchConfig small = oneSm();
    small.l1MshrEntries = 2;
    ArchConfig big = oneSm();
    big.l1MshrEntries = 256;

    Gpu gs_(small), gb(big);
    const EventCounts es = gs_.launch(scatterKernel(6), {8, 128});
    const EventCounts eb = gb.launch(scatterKernel(6), {8, 128});

    EXPECT_GT(es.mshrStallCycles, 0u);
    EXPECT_GT(es.mshrStallCycles, eb.mshrStallCycles);
    EXPECT_GE(es.cycles, eb.cycles);
    EXPECT_EQ(es.l1Misses, eb.l1Misses); // same traffic, different timing
}

TEST(L1Mshr, HitsDoNotTouchMshr)
{
    // Uniform-address loads: one line, all hits after the first.
    KernelBuilder kb("hits");
    const Reg addr = kb.reg();
    const Reg v = kb.reg();
    kb.movi(addr, 0x100000);
    const Reg acc = kb.reg();
    kb.movi(acc, 0);
    for (int i = 0; i < 8; ++i) {
        kb.ldg(v, addr);
        kb.iadd(acc, acc, v);
    }
    const Reg out = kb.reg();
    kb.movi(out, 0x200000);
    kb.stg(out, acc);
    const Kernel k = kb.build();

    ArchConfig cfg = oneSm();
    cfg.l1MshrEntries = 1;
    Gpu gpu(cfg);
    const EventCounts ev = gpu.launch(k, {1, 32});
    // One load miss plus the final write-through store.
    EXPECT_LE(ev.l1Misses, 2u);
    EXPECT_EQ(ev.mshrStallCycles, 0u);
}

} // namespace
} // namespace gs
