#include <gtest/gtest.h>

#include <vector>

#include "compress/bdi_codec.hpp"

namespace gs
{
namespace
{

TEST(BdiCodec, AllZero)
{
    const std::vector<Word> v(32, 0);
    const auto e = analyzeBdi(v, laneMaskLow(32));
    EXPECT_EQ(e.mode, BdiMode::Zero);
    EXPECT_EQ(e.storedBytes, 0u);
    EXPECT_TRUE(e.isScalar());
}

TEST(BdiCodec, Scalar)
{
    const std::vector<Word> v(32, 0xCAFEBABE);
    const auto e = analyzeBdi(v, laneMaskLow(32));
    EXPECT_EQ(e.mode, BdiMode::Scalar);
    EXPECT_EQ(e.storedBytes, 4u);
    EXPECT_TRUE(e.isScalar());
}

TEST(BdiCodec, Delta1)
{
    std::vector<Word> v;
    for (Word i = 0; i < 32; ++i)
        v.push_back(0x10000000 + i * 4); // deltas < 128
    const auto e = analyzeBdi(v, laneMaskLow(32));
    EXPECT_EQ(e.mode, BdiMode::BaseDelta1);
    EXPECT_EQ(e.storedBytes, 4u + 32u);
}

TEST(BdiCodec, Delta2)
{
    std::vector<Word> v;
    for (Word i = 0; i < 32; ++i)
        v.push_back(0x10000000 + i * 512); // deltas < 32768
    const auto e = analyzeBdi(v, laneMaskLow(32));
    EXPECT_EQ(e.mode, BdiMode::BaseDelta2);
    EXPECT_EQ(e.storedBytes, 4u + 64u);
}

TEST(BdiCodec, Uncompressible)
{
    std::vector<Word> v(32, 0);
    v[7] = 0x7fffffff;
    const auto e = analyzeBdi(v, laneMaskLow(32));
    EXPECT_EQ(e.mode, BdiMode::Uncompressed);
    EXPECT_EQ(e.storedBytes, 128u);
}

TEST(BdiCodec, HandlesHexBoundaryThatDefeatsByteMasking)
{
    // 0x3FFFFFFF vs 0x40000000: delta 1 -> BDI compresses where the
    // byte-mask codec cannot (Section 3.1 trade-off).
    const std::vector<Word> v = {0x3FFFFFFF, 0x40000000};
    const auto e = analyzeBdi(v, laneMaskLow(2));
    EXPECT_EQ(e.mode, BdiMode::BaseDelta1);
}

TEST(BdiCodec, NegativeDeltas)
{
    const std::vector<Word> v = {1000, 990, 1005, 920};
    const auto e = analyzeBdi(v, laneMaskLow(4));
    EXPECT_EQ(e.mode, BdiMode::BaseDelta1);
}

TEST(BdiCodec, InactiveLanesIgnored)
{
    std::vector<Word> v = {5, 0xffffffff, 5, 0xffffffff};
    const auto e = analyzeBdi(v, 0b0101);
    EXPECT_EQ(e.mode, BdiMode::Scalar);
}

TEST(BdiCodec, BaseIsFirstActiveLane)
{
    const std::vector<Word> v = {7, 42, 43, 44};
    const auto e = analyzeBdi(v, 0b1110);
    EXPECT_EQ(e.base, 42u);
    EXPECT_EQ(e.mode, BdiMode::BaseDelta1);
}

TEST(BdiCodec, StoredBytesTable)
{
    EXPECT_EQ(bdiStoredBytes(BdiMode::Zero, 32), 0u);
    EXPECT_EQ(bdiStoredBytes(BdiMode::Scalar, 32), 4u);
    EXPECT_EQ(bdiStoredBytes(BdiMode::BaseDelta1, 32), 36u);
    EXPECT_EQ(bdiStoredBytes(BdiMode::BaseDelta2, 32), 68u);
    EXPECT_EQ(bdiStoredBytes(BdiMode::Uncompressed, 32), 128u);
}

/** Property: the delta-width boundary is exact. */
class BdiBoundary : public ::testing::TestWithParam<int>
{
};

TEST_P(BdiBoundary, DeltaBoundaries)
{
    const int delta = GetParam();
    const std::vector<Word> v = {1 << 20, Word((1 << 20) + delta)};
    const auto e = analyzeBdi(v, 0b11);
    if (delta == 0)
        EXPECT_EQ(e.mode, BdiMode::Scalar);
    else if (std::abs(delta) < 128)
        EXPECT_EQ(e.mode, BdiMode::BaseDelta1);
    else if (std::abs(delta) < 32768)
        EXPECT_EQ(e.mode, BdiMode::BaseDelta2);
    else
        EXPECT_EQ(e.mode, BdiMode::Uncompressed);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, BdiBoundary,
                         ::testing::Values(0, 1, -1, 127, -127, 128, -128,
                                           32767, -32767, 32768, -32768,
                                           1000000));

} // namespace
} // namespace gs
