/**
 * @file
 * Differential testing: randomly generated structured kernels run both
 * through the full SIMT pipeline (every architecture mode) and the
 * independent per-thread reference interpreter; the architectural
 * results must be identical. This is the strongest correctness net over
 * the SIMT stack, divergence handling, predication and the special-move
 * machinery.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"
#include "sim/reference.hpp"

namespace gs
{
namespace
{

constexpr Addr kIn = 0x100000;
constexpr Addr kOut = 0x400000;
constexpr unsigned kThreads = 96; // 3 warps, last one partial at 64
constexpr unsigned kCtas = 3;
constexpr unsigned kTotal = kThreads * kCtas;

/**
 * Emit a random straight-line/structured body over the register pool.
 * Only tid-indexed stores, so cross-thread order cannot matter.
 */
class RandomProgram
{
  public:
    explicit RandomProgram(std::uint64_t seed) : rng_(seed) {}

    Kernel
    generate()
    {
        KernelBuilder kb("random");
        tid_ = kb.reg();
        kb.s2r(tid_, SReg::Tid);
        const Reg ctaid = kb.reg();
        kb.s2r(ctaid, SReg::CtaId);
        const Reg ntid = kb.reg();
        kb.s2r(ntid, SReg::NTid);
        gtid_ = kb.reg();
        kb.imad(gtid_, ctaid, ntid, tid_);

        // Register pool with mixed initial values.
        for (int i = 0; i < 6; ++i) {
            const Reg r = kb.reg();
            switch (i % 3) {
              case 0: kb.movi(r, Word(rng_.next32() & 0xffff)); break;
              case 1: kb.mov(r, tid_); break;
              default: kb.iadd(r, tid_, ctaid); break;
            }
            pool_.push_back(r);
        }
        // One loaded value (deterministic input array).
        const Reg addr = kb.reg();
        kb.shli(addr, gtid_, 2);
        kb.iaddi(addr, addr, Word(kIn));
        const Reg loaded = kb.reg();
        kb.ldg(loaded, addr);
        pool_.push_back(loaded);

        emitBlock(kb, /*depth=*/0, /*budget=*/18);

        // Store the whole pool to gtid-indexed slots (no cross-thread
        // aliasing, so CTA execution order cannot matter).
        const Reg out = kb.reg();
        for (unsigned i = 0; i < pool_.size(); ++i) {
            kb.shli(out, gtid_, 2);
            kb.iaddi(out, out, Word(kOut + Addr(i) * 4 * kTotal));
            kb.stg(out, pool_[i]);
        }
        return kb.build();
    }

  private:
    Reg
    pick()
    {
        return pool_[rng_.below(pool_.size())];
    }

    void
    emitOp(KernelBuilder &kb)
    {
        const Reg d = pick();
        const Reg a = pick();
        const Reg b = pick();
        switch (rng_.below(8)) {
          case 0: kb.iadd(d, a, b); break;
          case 1: kb.isub(d, a, b); break;
          case 2: kb.imul(d, a, b); break;
          case 3: kb.emit2(Opcode::AND, d, a, b); break;
          case 4: kb.emit2(Opcode::XOR, d, a, b); break;
          case 5: kb.emit2i(Opcode::SHL, d, a, Word(rng_.below(5))); break;
          case 6: kb.emit2(Opcode::IMIN, d, a, b); break;
          default: kb.iaddi(d, a, Word(rng_.below(97))); break;
        }
    }

    void
    emitBlock(KernelBuilder &kb, int depth, int budget)
    {
        while (budget-- > 0) {
            const auto kind = rng_.below(depth >= 2 ? 4 : 6);
            if (kind < 4) {
                emitOp(kb);
                continue;
            }
            if (kind == 4) {
                // Data-dependent branch: masks diverge mid-warp.
                const Pred p = kb.pred();
                kb.isetpi(p, CmpOp::LT, pick(),
                          Word(rng_.below(4096)));
                if (rng_.chance(0.5)) {
                    kb.ifThen(p, [&] {
                        emitBlock(kb, depth + 1, int(rng_.below(4)) + 1);
                    });
                } else {
                    kb.ifElse(
                        p,
                        [&] {
                            emitBlock(kb, depth + 1,
                                      int(rng_.below(3)) + 1);
                        },
                        [&] {
                            emitBlock(kb, depth + 1,
                                      int(rng_.below(3)) + 1);
                        });
                }
            } else {
                // Small counted loop with a fresh counter register.
                const Reg i = kb.reg();
                kb.forRangeI(i, 0, Word(rng_.below(4)) + 1, [&] {
                    emitBlock(kb, depth + 1, int(rng_.below(3)) + 1);
                });
            }
        }
    }

    Rng rng_;
    Reg tid_;
    Reg gtid_;
    std::vector<Reg> pool_;
};

std::vector<Word>
fillInput(GlobalMemory &mem, std::uint64_t seed)
{
    Rng rng(seed * 77 + 5);
    std::vector<Word> in(kTotal);
    for (auto &w : in)
        w = rng.next32() & 0xffffff;
    mem.fillWords(kIn, in);
    return in;
}

std::vector<Word>
simtOutputs(const Kernel &k, ArchMode mode, std::uint64_t seed,
            unsigned pool_size)
{
    ArchConfig cfg;
    cfg.numSms = 2;
    cfg.mode = mode;
    Gpu gpu(cfg);
    fillInput(gpu.memory(), seed);
    gpu.launch(k, {kCtas, kThreads});
    return gpu.memory().readWords(kOut, std::size_t(pool_size) * kTotal);
}

std::vector<Word>
referenceOutputs(const Kernel &k, std::uint64_t seed, unsigned pool_size)
{
    GlobalMemory mem;
    fillInput(mem, seed);
    referenceExecute(k, {kCtas, kThreads}, mem);
    return mem.readWords(kOut, std::size_t(pool_size) * kTotal);
}

class Differential : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Differential, SimtMatchesReferenceInterpreterAcrossModes)
{
    const std::uint64_t seed = GetParam();
    RandomProgram gen(seed);
    const Kernel k = gen.generate();
    SCOPED_TRACE(k.disassemble());

    const unsigned pool = 7; // registers stored by the generator
    const auto ref = referenceOutputs(k, seed, pool);
    for (const ArchMode m :
         {ArchMode::Baseline, ArchMode::AluScalar,
          ArchMode::WarpedCompression, ArchMode::GScalarFull}) {
        EXPECT_EQ(simtOutputs(k, m, seed, pool), ref)
            << "mode " << archModeName(m) << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, Differential,
                         ::testing::Range(0u, 12u));

TEST(Differential, ReferenceMatchesHandComputedKernel)
{
    // Sanity-check the oracle itself on a kernel with a known result.
    KernelBuilder kb("known");
    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg v = kb.reg();
    kb.movi(v, 10);
    const Pred p = kb.pred();
    kb.isetpi(p, CmpOp::LT, tid, 2);
    kb.ifElse(
        p, [&] { kb.iadd(v, v, tid); },
        [&] { kb.emit2i(Opcode::IMUL, v, tid, 3); });
    const Reg out = kb.reg();
    kb.shli(out, tid, 2);
    kb.iaddi(out, out, Word(kOut));
    kb.stg(out, v);
    const Kernel k = kb.build();

    GlobalMemory mem;
    referenceExecute(k, {1, 4}, mem);
    EXPECT_EQ(mem.readWord(kOut + 0), 10u);  // 10 + 0
    EXPECT_EQ(mem.readWord(kOut + 4), 11u);  // 10 + 1
    EXPECT_EQ(mem.readWord(kOut + 8), 6u);   // 2 * 3
    EXPECT_EQ(mem.readWord(kOut + 12), 9u);  // 3 * 3
}

} // namespace
} // namespace gs
