#include <gtest/gtest.h>

#include "common/events.hpp"

namespace gs
{
namespace
{

TEST(EventCounts, DefaultsZero)
{
    const EventCounts e;
    EXPECT_EQ(e.cycles, 0u);
    EXPECT_EQ(e.warpInsts, 0u);
    EXPECT_EQ(e.ipc(), 0.0);
    EXPECT_EQ(e.compressionRatio(), 1.0);
    EXPECT_EQ(e.bdiCompressionRatio(), 1.0);
}

TEST(EventCounts, MergeSumsCountersAndMaxesCycles)
{
    EventCounts a, b;
    a.cycles = 100;
    b.cycles = 150; // lock-step SMs: wall time is the max
    a.warpInsts = 10;
    b.warpInsts = 20;
    a.rfArrayReads = 5;
    b.rfArrayReads = 7;
    a.sfuEnergyUnits = 1.5;
    b.sfuEnergyUnits = 2.5;
    a.shadowOursBvrAccesses = 3;
    b.shadowOursBvrAccesses = 4;
    a.staticScalarInsts = 1;
    b.staticScalarInsts = 2;

    a += b;
    EXPECT_EQ(a.cycles, 150u);
    EXPECT_EQ(a.warpInsts, 30u);
    EXPECT_EQ(a.rfArrayReads, 12u);
    EXPECT_DOUBLE_EQ(a.sfuEnergyUnits, 4.0);
    EXPECT_EQ(a.shadowOursBvrAccesses, 7u);
    EXPECT_EQ(a.staticScalarInsts, 3u);
}

TEST(EventCounts, Ipc)
{
    EventCounts e;
    e.cycles = 200;
    e.warpInsts = 500;
    EXPECT_DOUBLE_EQ(e.ipc(), 2.5);
}

TEST(EventCounts, CompressionRatios)
{
    EventCounts e;
    e.compBytesUncompressed = 1280;
    e.compBytesCompressed = 640;
    e.bdiBytesUncompressed = 1280;
    e.bdiBytesCompressed = 320;
    EXPECT_DOUBLE_EQ(e.compressionRatio(), 2.0);
    EXPECT_DOUBLE_EQ(e.bdiCompressionRatio(), 4.0);
}

TEST(EventCounts, MergeIsAssociativeOnCounters)
{
    EventCounts a, b, c;
    a.l1Misses = 1;
    b.l1Misses = 2;
    c.l1Misses = 4;
    EventCounts ab = a;
    ab += b;
    ab += c;
    EventCounts bc = b;
    bc += c;
    EventCounts abc = a;
    abc += bc;
    EXPECT_EQ(ab.l1Misses, abc.l1Misses);
}

} // namespace
} // namespace gs
