#include <gtest/gtest.h>

#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace gs
{
namespace
{

TEST(Opcode, EveryOpcodeHasTraits)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        const auto &t = traits(Opcode(i));
        EXPECT_FALSE(t.name.empty()) << i;
        EXPECT_LE(t.numSrcs, 3u) << t.name;
        EXPECT_GT(t.energyUnits, 0.0) << t.name;
    }
}

TEST(Opcode, PipeClassesMatchSection21)
{
    EXPECT_EQ(traits(Opcode::FADD).pipe, PipeClass::ALU);
    EXPECT_EQ(traits(Opcode::IMAD).pipe, PipeClass::ALU);
    EXPECT_EQ(traits(Opcode::SIN).pipe, PipeClass::SFU);
    EXPECT_EQ(traits(Opcode::EX2).pipe, PipeClass::SFU);
    EXPECT_EQ(traits(Opcode::LDG).pipe, PipeClass::MEM);
    EXPECT_EQ(traits(Opcode::STS).pipe, PipeClass::MEM);
    EXPECT_EQ(traits(Opcode::BRA).pipe, PipeClass::CTRL);
    EXPECT_EQ(traits(Opcode::BAR).pipe, PipeClass::CTRL);
}

TEST(Opcode, SfuEnergyInThePapersBand)
{
    // Section 1: special-function instructions consume 3-24x the energy
    // of typical arithmetic instructions.
    const double fp = traits(Opcode::FADD).energyUnits;
    for (const Opcode op : {Opcode::SIN, Opcode::COS, Opcode::EX2,
                            Opcode::LG2, Opcode::RCP, Opcode::RSQ,
                            Opcode::SQRT}) {
        const double ratio = traits(op).energyUnits / fp;
        EXPECT_GE(ratio, 3.0) << opcodeName(op);
        EXPECT_LE(ratio, 24.0) << opcodeName(op);
    }
}

TEST(Opcode, Helpers)
{
    EXPECT_TRUE(isLoad(Opcode::LDG));
    EXPECT_TRUE(isLoad(Opcode::LDS));
    EXPECT_FALSE(isLoad(Opcode::STG));
    EXPECT_TRUE(isStore(Opcode::STS));
    EXPECT_TRUE(isGlobalMem(Opcode::STG));
    EXPECT_FALSE(isGlobalMem(Opcode::LDS));
}

TEST(Instruction, SrcCountWithImmediates)
{
    Instruction mov;
    mov.op = Opcode::MOV;
    mov.hasImm = true;
    EXPECT_EQ(mov.numSrcRegs(), 0u);

    Instruction add;
    add.op = Opcode::IADD;
    EXPECT_EQ(add.numSrcRegs(), 2u);
    add.hasImm = true;
    EXPECT_EQ(add.numSrcRegs(), 1u);

    Instruction ld;
    ld.op = Opcode::LDG;
    ld.imm = 16; // memory offset does not consume a source slot
    EXPECT_EQ(ld.numSrcRegs(), 1u);

    Instruction fma;
    fma.op = Opcode::FFMA;
    EXPECT_EQ(fma.numSrcRegs(), 3u);
}

TEST(Instruction, DisassemblyRoundTripMnemonics)
{
    Instruction i;
    i.op = Opcode::FFMA;
    i.dst = 3;
    i.src = {0, 1, 2};
    EXPECT_EQ(i.toString(), "ffma r3, r0, r1, r2");

    Instruction g;
    g.op = Opcode::IADD;
    g.dst = 1;
    g.src[0] = 1;
    g.imm = 4;
    g.hasImm = true;
    g.guard = 2;
    g.guardNeg = true;
    const std::string s = g.toString();
    EXPECT_NE(s.find("@!p2"), std::string::npos);
    EXPECT_NE(s.find("iadd"), std::string::npos);

    Instruction b;
    b.op = Opcode::BRA;
    b.target = 7;
    b.reconv = 9;
    const std::string bs = b.toString();
    EXPECT_NE(bs.find("7"), std::string::npos);
    EXPECT_NE(bs.find("9"), std::string::npos);
}

TEST(Opcode, CmpAndSregNames)
{
    EXPECT_EQ(cmpName(CmpOp::LT), "lt");
    EXPECT_EQ(cmpName(CmpOp::GE), "ge");
    EXPECT_EQ(sregName(SReg::Tid), "tid");
    EXPECT_EQ(sregName(SReg::CtaId), "ctaid");
}

} // namespace
} // namespace gs
