/**
 * @file
 * Benchmark-suite regression tests: every Table 2 workload builds,
 * validates and runs, and the calibrated per-benchmark characteristics
 * the paper calls out stay in band.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.hpp"
#include "harness/runner.hpp"

namespace gs
{
namespace
{

/** Small-but-faithful config so the full suite stays fast in tests. */
ArchConfig
testConfig(ArchMode mode = ArchMode::Baseline)
{
    ArchConfig cfg;
    cfg.mode = mode;
    return cfg;
}

/** One shared run of the suite (expensive); computed once. */
const std::map<std::string, EventCounts> &
suiteRuns()
{
    static const std::map<std::string, EventCounts> runs = [] {
        setQuiet(true);
        std::map<std::string, EventCounts> out;
        for (const Workload &w : makeSuite())
            out.emplace(w.name, runWorkload(w, testConfig()).ev);
        return out;
    }();
    return runs;
}

double
frac(EventCounts::u64 num, EventCounts::u64 den)
{
    return den ? double(num) / double(den) : 0.0;
}

TEST(Workloads, SuiteHasAllSeventeenBenchmarks)
{
    const auto suite = makeSuite();
    ASSERT_EQ(suite.size(), 17u);
    EXPECT_EQ(workloadNames().size(), 17u);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, workloadNames()[i]);
}

TEST(Workloads, KernelsValidateAndDeclareSuites)
{
    for (const Workload &w : makeSuite()) {
        ASSERT_FALSE(w.launches.empty()) << w.name;
        for (const auto &l : w.launches) {
            l.kernel.validate();
            EXPECT_GT(l.dims.ctas, 0u);
        }
        EXPECT_TRUE(w.suite == "rodinia" || w.suite == "parboil")
            << w.name;
        EXPECT_FALSE(w.fullName.empty());
    }
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(makeWorkload("BP").fullName, "backprop");
    EXPECT_EQ(makeWorkload("LBM").suite, "parboil");
}

TEST(WorkloadsDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Workloads, EveryBenchmarkRetiresWork)
{
    for (const auto &[name, ev] : suiteRuns()) {
        EXPECT_GT(ev.warpInsts, 1000u) << name;
        EXPECT_GT(ev.ipc(), 0.1) << name;
    }
}

// ---- calibration regressions against the paper's callouts -----------------

TEST(WorkloadCalibration, NonDivergentBenchmarks)
{
    // Section 5.1 names mri-q, sgemm and spmv-style benchmarks as the
    // non-divergent end of the suite.
    for (const char *name : {"BP", "LC", "MQ", "MM", "SR2", "ST"}) {
        const auto &ev = suiteRuns().at(name);
        EXPECT_LT(frac(ev.divergentWarpInsts, ev.warpInsts), 0.05)
            << name;
    }
}

TEST(WorkloadCalibration, HighlyDivergentBenchmarks)
{
    // Section 4.2: ~50 % of executed instructions divergent in lbm and
    // heartwall.
    for (const char *name : {"HW", "LBM"}) {
        const auto &ev = suiteRuns().at(name);
        EXPECT_GT(frac(ev.divergentWarpInsts, ev.warpInsts), 0.35)
            << name;
    }
}

TEST(WorkloadCalibration, DivergentScalarCallouts)
{
    // Section 5.2: HS, LBM, SAD have 17 %, 30 %, 19 % divergent-scalar
    // instructions; generous +/- bands.
    const auto &runs = suiteRuns();
    EXPECT_NEAR(frac(runs.at("HS").divergentScalarEligible,
                     runs.at("HS").warpInsts),
                0.17, 0.08);
    EXPECT_NEAR(frac(runs.at("LBM").divergentScalarEligible,
                     runs.at("LBM").warpInsts),
                0.30, 0.12);
    EXPECT_NEAR(frac(runs.at("SAD").divergentScalarEligible,
                     runs.at("SAD").warpInsts),
                0.19, 0.08);
}

TEST(WorkloadCalibration, BpIsTheSfuAndHalfScalarShowcase)
{
    // Section 5.3: ~14 % of BP's instructions are SFU, all scalar, and
    // 12 % are half-warp scalar.
    const auto &ev = suiteRuns().at("BP");
    const double sfu = frac(ev.sfuWarpInsts, ev.warpInsts);
    EXPECT_GT(sfu, 0.08);
    EXPECT_LT(sfu, 0.22);
    EXPECT_GT(frac(ev.scalarSfuEligible, ev.sfuWarpInsts), 0.9);
    EXPECT_NEAR(frac(ev.halfScalarEligible, ev.warpInsts), 0.12, 0.06);
}

TEST(WorkloadCalibration, SuiteAverageScalarTiers)
{
    // Fig. 9 averages: ALU-scalar ~22 %, total eligible ~40 %.
    double alu = 0, total = 0;
    for (const auto &[name, ev] : suiteRuns()) {
        alu += frac(ev.scalarAluEligible, ev.warpInsts);
        total += frac(ev.scalarAluEligible + ev.scalarSfuEligible +
                          ev.scalarMemEligible + ev.halfScalarEligible +
                          ev.divergentScalarEligible,
                      ev.warpInsts);
    }
    alu /= double(suiteRuns().size());
    total /= double(suiteRuns().size());
    EXPECT_NEAR(alu, 0.22, 0.07);
    EXPECT_NEAR(total, 0.40, 0.10);
}

TEST(WorkloadCalibration, LbmIsMemoryIntensive)
{
    // Fig. 11 discussion: LBM's gains are capped by memory power.
    const auto &lbm = suiteRuns().at("LBM");
    const auto &bp = suiteRuns().at("BP");
    EXPECT_GT(frac(lbm.dramAccesses, lbm.warpInsts),
              4 * frac(bp.dramAccesses, bp.warpInsts));
}

TEST(WorkloadCalibration, MgAndMvArePartialCompressionBenchmarks)
{
    // Fig. 12 discussion: MG and MV have relatively few scalars but
    // many 3-/2-byte-similar accesses.
    for (const char *name : {"MG", "MV"}) {
        const auto &ev = suiteRuns().at(name);
        const double scalar = frac(ev.rfAccScalar, ev.rfReads);
        const double partial =
            frac(ev.rfAcc3Byte + ev.rfAcc2Byte + ev.rfAcc1Byte,
                 ev.rfReads);
        EXPECT_LT(scalar, 0.30) << name;
        EXPECT_GT(partial, 0.30) << name;
    }
}

TEST(WorkloadCalibration, CompressionRatioNearPaper)
{
    double ours = 0, bdi = 0;
    for (const auto &[name, ev] : suiteRuns()) {
        ours += ev.compressionRatio();
        bdi += ev.bdiCompressionRatio();
    }
    ours /= double(suiteRuns().size());
    bdi /= double(suiteRuns().size());
    EXPECT_NEAR(ours, 2.17, 0.35);
    EXPECT_NEAR(bdi, 2.13, 0.35);
    EXPECT_GT(ours, bdi); // Section 5.3: ours 2.17 vs BDI 2.13
}

} // namespace
} // namespace gs
