/**
 * @file
 * Reference-interpreter opcode coverage, mirroring the disasm coverage
 * test: every opcode of the mini ISA executes through
 * referenceExecute() — the differential-fuzzing oracle must never meet
 * an instruction it cannot interpret. A kernel authored through
 * KernelBuilder exercises every builder-reachable opcode with exact
 * architectural-value assertions for a representative subset;
 * hardware-inserted SMOV runs through a hand-constructed kernel; the
 * bounded variant's step budget turns a non-terminating kernel into a
 * clean false.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/kernel_builder.hpp"
#include "sim/gmem.hpp"
#include "sim/reference.hpp"

using namespace gs;

namespace
{

constexpr Addr kIn = 0x100000;
constexpr Addr kOut = 0x400000;
constexpr unsigned kCtas = 2;
constexpr unsigned kThreads = 48; // partial warp: 1.5 warps per CTA
constexpr unsigned kTotal = kCtas * kThreads;

/** Opcodes appearing in @p kernels, for the completeness assertion. */
std::set<Opcode>
coveredOpcodes(const std::vector<Kernel> &kernels)
{
    std::set<Opcode> seen;
    for (const Kernel &k : kernels)
        for (const Instruction &inst : k.code)
            seen.insert(inst.op);
    return seen;
}

/**
 * One kernel using every opcode KernelBuilder can author. Results
 * checked below land in fixed output slots (slot i = words
 * [i*kTotal, (i+1)*kTotal) at kOut), indexed by global thread id.
 */
Kernel
buildCoverageKernel()
{
    KernelBuilder kb("coverage");
    kb.shared(kThreads * 4);

    const Reg tid = kb.reg();
    kb.s2r(tid, SReg::Tid);
    const Reg ctaid = kb.reg();
    kb.s2r(ctaid, SReg::CtaId);
    const Reg ntid = kb.reg();
    kb.s2r(ntid, SReg::NTid);
    const Reg nctaid = kb.reg();
    kb.s2r(nctaid, SReg::NCtaId);
    const Reg lane = kb.reg();
    kb.s2r(lane, SReg::LaneId);
    const Reg warp = kb.reg();
    kb.s2r(warp, SReg::WarpId);
    const Reg gtid = kb.reg();
    kb.imad(gtid, ctaid, ntid, tid);

    const Reg a = kb.reg();
    kb.movi(a, 12);
    const Reg b = kb.reg();
    kb.movi(b, 5);
    const Reg neg = kb.reg();
    kb.movi(neg, Word(0xfffffff9u)); // -7 as two's complement
    const Reg fa = kb.reg();
    kb.movf(fa, 1.5f);
    const Reg fb = kb.reg();
    kb.movf(fb, -2.25f);
    const Reg fc = kb.reg();
    kb.movf(fc, 0.75f);

    // Accumulator folds every result so nothing is dead code.
    const Reg acc = kb.reg();
    kb.movi(acc, 0);
    const Reg t = kb.reg();
    auto fold = [&] { kb.emit2(Opcode::XOR, acc, acc, t); };

    std::vector<Reg> outs; // checked slots, in slot order

    // Integer ALU, two sources.
    for (const Opcode op :
         {Opcode::IADD, Opcode::ISUB, Opcode::IMUL, Opcode::IDIV,
          Opcode::IREM, Opcode::IMIN, Opcode::IMAX, Opcode::AND,
          Opcode::OR, Opcode::XOR, Opcode::SHL, Opcode::SHR}) {
        kb.emit2(op, t, a, b);
        fold();
    }
    const Reg rIadd = kb.reg(); // slot 0: 12 + 5
    kb.iadd(rIadd, a, b);
    outs.push_back(rIadd);

    // Integer ALU, one source / three sources.
    kb.emit1(Opcode::IABS, t, neg);
    fold();
    kb.emit1(Opcode::NOT, t, a);
    fold();
    const Reg rImad = kb.reg(); // slot 1: 12 * 5 + tid
    kb.imad(rImad, a, b, tid);
    outs.push_back(rImad);

    // MOV register form (movi above already pinned the imm form).
    const Reg rMov = kb.reg(); // slot 2: 12
    kb.mov(rMov, a);
    outs.push_back(rMov);

    // Floating point and SFU.
    for (const Opcode op : {Opcode::FADD, Opcode::FSUB, Opcode::FMUL,
                            Opcode::FMIN, Opcode::FMAX}) {
        kb.emit2(op, t, fa, fb);
        fold();
    }
    kb.emit3(Opcode::FFMA, t, fa, fb, fc);
    fold();
    for (const Opcode op :
         {Opcode::FABS, Opcode::FNEG, Opcode::SIN, Opcode::COS,
          Opcode::EX2, Opcode::LG2, Opcode::RCP, Opcode::RSQ,
          Opcode::SQRT}) {
        kb.emit1(op, t, fa);
        fold();
    }
    const Reg rI2f = kb.reg(); // slot 3: float(12) bits
    kb.emit1(Opcode::I2F, rI2f, a);
    outs.push_back(rI2f);
    const Reg rF2i = kb.reg(); // slot 4: int(1.5f)
    kb.emit1(Opcode::F2I, rF2i, fa);
    outs.push_back(rF2i);

    // Predicates and select.
    const Pred p = kb.pred();
    kb.isetp(p, CmpOp::LT, tid, b);
    const Pred q = kb.pred();
    kb.fsetp(q, CmpOp::GT, fa, fb);
    const Reg rSel = kb.reg(); // slot 5: tid < 5 ? 12 : 5
    kb.sel(rSel, p, a, b);
    outs.push_back(rSel);

    // Global memory round trip through this thread's private slot.
    const Reg addr = kb.reg();
    kb.shli(addr, gtid, 2);
    kb.iaddi(addr, addr, Word(kIn));
    kb.stg(addr, rImad);
    const Reg rLdg = kb.reg(); // slot 6: the stored 60 + tid
    kb.ldg(rLdg, addr);
    outs.push_back(rLdg);

    // Shared memory exchange (uniform control flow, barrier fenced).
    const Reg saddr = kb.reg();
    kb.shli(saddr, tid, 2);
    kb.sts(saddr, tid);
    kb.bar();
    const Reg rLds = kb.reg(); // slot 7: own tid back
    kb.lds(rLds, saddr);
    kb.bar();
    outs.push_back(rLds);

    // Structured control flow: BRA via ifThen/ifElse, JMP via loops.
    const Reg rBra = kb.reg(); // slot 8: tid < 5 ? 100 : 1
    kb.movi(rBra, 1);
    kb.ifThen(p, [&] { kb.movi(rBra, 100); });
    kb.ifNotThen(p, [&] { kb.iaddi(acc, acc, 3); });
    kb.ifElse(q, [&] { kb.iaddi(acc, acc, 1); },
              [&] { kb.iaddi(acc, acc, 2); });
    outs.push_back(rBra);
    const Reg rLoop = kb.reg(); // slot 9: 4 iterations of += 2
    kb.movi(rLoop, 0);
    const Reg idx = kb.reg();
    kb.forRangeI(idx, 0, 4, [&] { kb.iaddi(rLoop, rLoop, 2); });
    outs.push_back(rLoop);

    // Guarded (predicated) execution.
    const Reg rGuard = kb.reg(); // slot 10: tid < 5 ? 7 : 9
    kb.movi(rGuard, 9);
    kb.predicated(p, false, [&] { kb.movi(rGuard, 7); });
    outs.push_back(rGuard);

    outs.push_back(acc); // slot 11: accumulated soup (determinism only)

    const Reg out = kb.reg();
    for (unsigned i = 0; i < outs.size(); ++i) {
        kb.shli(out, gtid, 2);
        kb.iaddi(out, out, Word(kOut + Addr(i) * 4 * kTotal));
        kb.stg(out, outs[i]);
    }
    return kb.build();
}

/** dst <- src register move that ignores the active mask (SMOV is
 *  inserted by the scalarizing hardware, never authored). */
Kernel
buildSmovKernel()
{
    Kernel k;
    k.name = "smov";
    k.numRegs = 3;

    Instruction mv;
    mv.op = Opcode::MOV;
    mv.dst = 1;
    mv.imm = 0x1234;
    mv.hasImm = true;

    Instruction sm;
    sm.op = Opcode::SMOV;
    sm.dst = 2;
    sm.src = {1, kNoReg, kNoReg};

    Instruction ad;
    ad.op = Opcode::MOV;
    ad.dst = 0;
    ad.imm = Word(kOut);
    ad.hasImm = true;

    Instruction st;
    st.op = Opcode::STG;
    st.src = {0, 2, kNoReg};

    Instruction ex;
    ex.op = Opcode::EXIT;

    k.code = {mv, sm, ad, st, ex};
    return k;
}

/** JMP back to itself: never terminates. */
Kernel
buildSpinKernel()
{
    Kernel k;
    k.name = "spin";
    k.numRegs = 1;
    Instruction j;
    j.op = Opcode::JMP;
    j.target = 0;
    Instruction ex;
    ex.op = Opcode::EXIT;
    k.code = {j, ex};
    return k;
}

Word
slot(const std::vector<Word> &words, unsigned s, unsigned g)
{
    return words[std::size_t(s) * kTotal + g];
}

} // namespace

TEST(ReferenceCoverage, EveryOpcodeExecutes)
{
    const Kernel cover = buildCoverageKernel();
    const Kernel smov = buildSmovKernel();

    GlobalMemory mem;
    referenceExecute(cover, {kCtas, kThreads}, mem);
    GlobalMemory smem;
    referenceExecute(smov, {1, 1}, smem);
    EXPECT_EQ(smem.readWord(kOut), 0x1234u);

    const std::set<Opcode> seen = coveredOpcodes({cover, smov});
    std::string missing;
    for (unsigned op = 0; op < unsigned(Opcode::NumOpcodes); ++op)
        if (!seen.count(Opcode(op)))
            missing += std::string(opcodeName(Opcode(op))) + " ";
    EXPECT_EQ(seen.size(), std::size_t(Opcode::NumOpcodes))
        << "opcodes never executed: " << missing;
}

TEST(ReferenceCoverage, ArchitecturalValuesAreExact)
{
    const Kernel k = buildCoverageKernel();
    GlobalMemory mem;
    referenceExecute(k, {kCtas, kThreads}, mem);
    const std::vector<Word> out = mem.readWords(kOut, 12 * kTotal);

    float f12 = 12.0f;
    Word f12bits;
    static_assert(sizeof f12bits == sizeof f12);
    __builtin_memcpy(&f12bits, &f12, sizeof f12bits);

    for (unsigned c = 0; c < kCtas; ++c) {
        for (unsigned tid = 0; tid < kThreads; ++tid) {
            const unsigned g = c * kThreads + tid;
            EXPECT_EQ(slot(out, 0, g), 17u);                    // IADD
            EXPECT_EQ(slot(out, 1, g), 60u + tid);              // IMAD
            EXPECT_EQ(slot(out, 2, g), 12u);                    // MOV
            EXPECT_EQ(slot(out, 3, g), f12bits);                // I2F
            EXPECT_EQ(slot(out, 4, g), 1u);                     // F2I
            EXPECT_EQ(slot(out, 5, g), tid < 5 ? 12u : 5u);     // SEL
            EXPECT_EQ(slot(out, 6, g), 60u + tid);              // LDG/STG
            EXPECT_EQ(slot(out, 7, g), Word(tid));              // LDS/STS
            EXPECT_EQ(slot(out, 8, g), tid < 5 ? 100u : 1u);    // BRA
            EXPECT_EQ(slot(out, 9, g), 8u);                     // JMP loop
            EXPECT_EQ(slot(out, 10, g), tid < 5 ? 7u : 9u);     // guard
        }
    }
}

TEST(ReferenceCoverage, DeterministicAcrossRuns)
{
    const Kernel k = buildCoverageKernel();
    GlobalMemory m1, m2;
    referenceExecute(k, {kCtas, kThreads}, m1);
    referenceExecute(k, {kCtas, kThreads}, m2);
    EXPECT_EQ(m1.readWords(kOut, 12 * kTotal),
              m2.readWords(kOut, 12 * kTotal));
}

TEST(ReferenceCoverage, BoundedVariantStopsNonTerminatingKernels)
{
    GlobalMemory mem;
    EXPECT_FALSE(
        referenceExecuteBounded(buildSpinKernel(), {1, 1}, mem, 1000));

    // A terminating kernel under a generous budget completes normally.
    GlobalMemory ok;
    EXPECT_TRUE(referenceExecuteBounded(buildCoverageKernel(),
                                        {kCtas, kThreads}, ok,
                                        10'000'000));
    EXPECT_EQ(ok.readWord(kOut), 17u);
}
