#include <gtest/gtest.h>

#include "common/log.hpp"
#include "harness/experiments.hpp"
#include "harness/runner.hpp"

namespace gs
{
namespace
{

TEST(Harness, ExperimentConfigIsTable1)
{
    const ArchConfig cfg = experimentConfig();
    EXPECT_EQ(cfg.numSms, 15u);
    EXPECT_EQ(cfg.warpSize, 32u);
    EXPECT_EQ(cfg.numBanks, 16u);
    EXPECT_EQ(cfg.numCollectors, 16u);
    EXPECT_EQ(cfg.numSchedulers, 2u);
    EXPECT_EQ(cfg.simtWidth, 16u);
    EXPECT_EQ(cfg.maxThreadsPerSm, 1536u);
    EXPECT_EQ(cfg.maxCtasPerSm, 8u);
    EXPECT_EQ(cfg.l1Bytes, 16u * 1024);
    EXPECT_EQ(cfg.l2Bytes, 768u * 1024);
    EXPECT_EQ(cfg.memChannels, 6u);
    EXPECT_DOUBLE_EQ(cfg.coreClockGhz, 1.4);
    EXPECT_EQ(cfg.mode, ArchMode::Baseline);
}

TEST(Harness, RunWorkloadProducesPower)
{
    setQuiet(true);
    ArchConfig cfg;
    cfg.mode = ArchMode::GScalarFull;
    const RunResult r = runWorkload("MQ", cfg);
    EXPECT_EQ(r.workload, "MQ");
    EXPECT_EQ(r.mode, ArchMode::GScalarFull);
    EXPECT_GT(r.ev.cycles, 0u);
    EXPECT_GT(r.power.totalW, 10.0);
    EXPECT_LT(r.power.totalW, 250.0);
    EXPECT_GT(r.power.ipcPerWatt(), 0.0);
}

TEST(Harness, RunWorkloadDeterministic)
{
    setQuiet(true);
    const ArchConfig cfg = experimentConfig();
    const RunResult a = runWorkload("HS", cfg);
    const RunResult b = runWorkload("HS", cfg);
    EXPECT_EQ(a.ev.cycles, b.ev.cycles);
    EXPECT_DOUBLE_EQ(a.power.totalW, b.power.totalW);
}

TEST(Harness, SeedChangesData)
{
    setQuiet(true);
    ArchConfig cfg = experimentConfig();
    const RunResult a = runWorkload("HW", cfg);
    cfg.seed = 99;
    const RunResult b = runWorkload("HW", cfg);
    // Same instruction stream, different data: the value-dependent
    // compression accounting must move with the seed.
    EXPECT_EQ(a.ev.warpInsts, b.ev.warpInsts);
    EXPECT_NE(a.ev.compBytesCompressed, b.ev.compBytesCompressed);
}

TEST(Harness, Table3Experiment)
{
    const std::string s = runTable3();
    EXPECT_NE(s.find("Table 3"), std::string::npos);
    EXPECT_NE(s.find("compressor"), std::string::npos);
}

} // namespace
} // namespace gs
