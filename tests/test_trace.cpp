#include <gtest/gtest.h>

#include <sstream>

#include "isa/kernel_builder.hpp"
#include "sim/gpu.hpp"
#include "sim/trace.hpp"

namespace gs
{
namespace
{

Kernel
tinyKernel()
{
    KernelBuilder kb("tiny");
    const Reg a = kb.reg();
    const Reg b = kb.reg();
    kb.movi(a, 5);
    kb.movi(b, 7);
    const Reg c = kb.reg();
    kb.iadd(c, a, b);
    const Reg addr = kb.reg();
    kb.movi(addr, 0x1000);
    kb.stg(addr, c);
    return kb.build();
}

/**
 * Collects issue events for inspection. The instruction pointer is only
 * valid during the callback, so the opcode is copied out.
 */
class CollectingTracer : public Tracer
{
  public:
    std::vector<IssueEvent> issues;
    std::vector<Opcode> ops;
    unsigned launches = 0;
    unsigned retires = 0;

    void
    onIssue(const IssueEvent &e) override
    {
        issues.push_back(e);
        ops.push_back(e.inst ? e.inst->op : Opcode::EXIT);
    }
    void onCtaLaunch(unsigned, unsigned, Cycle) override { ++launches; }
    void onCtaRetire(unsigned, unsigned, Cycle) override { ++retires; }
};

TEST(Trace, ObservesEveryIssueAndCtaEvent)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    Gpu gpu(cfg);
    CollectingTracer tracer;
    gpu.setTracer(&tracer);
    const Kernel k = tinyKernel();
    const EventCounts ev = gpu.launch(k, {2, 32});

    EXPECT_EQ(tracer.launches, 2u);
    EXPECT_EQ(tracer.retires, 2u);
    EXPECT_EQ(tracer.issues.size(), ev.issuedInsts);
    // Events carry usable PCs and instructions.
    EXPECT_EQ(tracer.issues.front().pc, 0);
    EXPECT_EQ(tracer.ops.front(), Opcode::MOV);
    EXPECT_EQ(tracer.ops.back(), Opcode::EXIT);
}

TEST(Trace, ScalarDecisionsVisible)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    cfg.mode = ArchMode::GScalarFull;
    Gpu gpu(cfg);
    CollectingTracer tracer;
    gpu.setTracer(&tracer);
    gpu.launch(tinyKernel(), {1, 32});

    bool any_scalar = false;
    for (const auto &e : tracer.issues)
        any_scalar |= e.execScalar;
    EXPECT_TRUE(any_scalar); // iadd of two uniform movs runs scalar
}

TEST(Trace, TextTracerFormatsLines)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    cfg.mode = ArchMode::GScalarFull;
    Gpu gpu(cfg);
    std::ostringstream os;
    TextTracer tracer(os);
    gpu.setTracer(&tracer);
    gpu.launch(tinyKernel(), {1, 32});

    const std::string s = os.str();
    EXPECT_NE(s.find("launch cta0"), std::string::npos);
    EXPECT_NE(s.find("retire cta0"), std::string::npos);
    EXPECT_NE(s.find("iadd"), std::string::npos);
    EXPECT_NE(s.find("[scalar:"), std::string::npos);
    EXPECT_NE(s.find("exit"), std::string::npos);
}

TEST(Trace, DetachingStopsEvents)
{
    ArchConfig cfg;
    cfg.numSms = 1;
    Gpu gpu(cfg);
    CollectingTracer tracer;
    gpu.setTracer(&tracer);
    gpu.launch(tinyKernel(), {1, 32});
    const std::size_t first = tracer.issues.size();
    gpu.setTracer(nullptr);
    gpu.launch(tinyKernel(), {1, 32});
    EXPECT_EQ(tracer.issues.size(), first);
}

} // namespace
} // namespace gs
