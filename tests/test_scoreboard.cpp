#include <gtest/gtest.h>

#include "sim/scoreboard.hpp"

namespace gs
{
namespace
{

Instruction
addInst(RegIdx d, RegIdx a, RegIdx b)
{
    Instruction i;
    i.op = Opcode::IADD;
    i.dst = d;
    i.src[0] = a;
    i.src[1] = b;
    return i;
}

TEST(Scoreboard, RawHazard)
{
    Scoreboard sb;
    sb.init(8, 2);
    const Instruction producer = addInst(0, 1, 2);
    const Instruction consumer = addInst(3, 0, 1);

    EXPECT_TRUE(sb.ready(producer));
    sb.reserve(producer);
    EXPECT_FALSE(sb.ready(consumer)); // reads r0
    sb.release(producer);
    EXPECT_TRUE(sb.ready(consumer));
}

TEST(Scoreboard, WawHazard)
{
    Scoreboard sb;
    sb.init(8, 2);
    const Instruction a = addInst(0, 1, 2);
    sb.reserve(a);
    EXPECT_FALSE(sb.ready(addInst(0, 3, 4)));
    sb.release(a);
    EXPECT_TRUE(sb.ready(addInst(0, 3, 4)));
}

TEST(Scoreboard, IndependentInstructionsReady)
{
    Scoreboard sb;
    sb.init(8, 2);
    sb.reserve(addInst(0, 1, 2));
    EXPECT_TRUE(sb.ready(addInst(3, 4, 5)));
}

TEST(Scoreboard, PredicateHazards)
{
    Scoreboard sb;
    sb.init(8, 2);
    Instruction setp;
    setp.op = Opcode::ISETP;
    setp.pdst = 0;
    setp.src[0] = 1;
    setp.src[1] = 2;
    sb.reserve(setp);

    Instruction bra;
    bra.op = Opcode::BRA;
    bra.guard = 0;
    EXPECT_FALSE(sb.ready(bra));

    Instruction sel;
    sel.op = Opcode::SEL;
    sel.dst = 3;
    sel.src[0] = 4;
    sel.src[1] = 5;
    sel.psrc = 0;
    EXPECT_FALSE(sb.ready(sel));

    sb.release(setp);
    EXPECT_TRUE(sb.ready(bra));
    EXPECT_TRUE(sb.ready(sel));
}

TEST(Scoreboard, MultipleOutstandingSameRegister)
{
    Scoreboard sb;
    sb.init(8, 2);
    const Instruction a = addInst(0, 1, 2);
    sb.reserve(a);
    sb.reserve(a); // e.g. SMOV + real write both target r0
    sb.release(a);
    EXPECT_FALSE(sb.ready(addInst(3, 0, 1)));
    sb.release(a);
    EXPECT_TRUE(sb.ready(addInst(3, 0, 1)));
}

TEST(Scoreboard, AnyPending)
{
    Scoreboard sb;
    sb.init(4, 1);
    EXPECT_FALSE(sb.anyPending());
    const Instruction a = addInst(0, 1, 2);
    sb.reserve(a);
    EXPECT_TRUE(sb.anyPending());
    sb.release(a);
    EXPECT_FALSE(sb.anyPending());
}

TEST(Scoreboard, InitClearsState)
{
    Scoreboard sb;
    sb.init(4, 1);
    sb.reserve(addInst(0, 1, 2));
    sb.init(4, 1);
    EXPECT_FALSE(sb.anyPending());
}

} // namespace
} // namespace gs
