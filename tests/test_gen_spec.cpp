/**
 * @file
 * GenSpec unit tests (gen/spec.hpp): canonical-name round trips,
 * strict parse rejection, per-knob fingerprint sensitivity, the binary
 * store-format round trip with hostile-input handling, and the strict
 * CLI value parsers of the fuzz command.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gen/fuzz.hpp"
#include "gen/spec.hpp"

using namespace gs;

TEST(GenSpec, DefaultsAreValidAndRoundTripThroughName)
{
    const GenSpec spec;
    EXPECT_TRUE(spec.check().empty()) << spec.check();

    const std::string name = spec.toName();
    EXPECT_EQ(name.rfind("gen:seed=", 0), 0u) << name;

    std::string err;
    const std::optional<GenSpec> back = parseGenSpec(name, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);
    EXPECT_EQ(back->toName(), name);
}

TEST(GenSpec, PartialNamesKeepDefaultsForMissingKnobs)
{
    std::string err;
    const std::optional<GenSpec> spec =
        parseGenSpec("gen:seed=42,ops=7", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->seed, 42u);
    EXPECT_EQ(spec->ops, 7u);
    const GenSpec defaults;
    EXPECT_EQ(spec->tpc, defaults.tpc);
    EXPECT_EQ(spec->div, defaults.div);
}

TEST(GenSpec, ParseRejectsMalformedNames)
{
    for (const char *bad : {
             "BP",                      // not a gen: name
             "gen:",                    // empty knob list entry
             "gen:ops",                 // missing '='
             "gen:ops=",                // empty value
             "gen:ops=abc",             // non-digit value
             "gen:ops=0",               // below range
             "gen:ops=5000",            // above range
             "gen:bogus=1",             // unknown knob
             "gen:ops=4,ops=5",         // duplicate knob
             "gen:scalar=60,affine=60", // shared 100% budget blown
             "gen:tpc=999",             // above tpc cap
             "gen:seed=18446744073709551616", // overflows u64
         }) {
        std::string err;
        EXPECT_FALSE(parseGenSpec(bad, &err).has_value()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(GenSpec, SetKnobCoversEveryAdvertisedKnob)
{
    const std::vector<std::string> knobs = genKnobNames();
    ASSERT_FALSE(knobs.empty());
    EXPECT_EQ(std::set<std::string>(knobs.begin(), knobs.end()).size(),
              knobs.size());

    GenSpec spec;
    for (const std::string &knob : knobs) {
        std::string err;
        EXPECT_TRUE(setGenKnob(spec, knob, "1", &err))
            << knob << ": " << err;
    }
    EXPECT_TRUE(spec.check().empty()) << spec.check();

    std::string err;
    EXPECT_FALSE(setGenKnob(spec, "nope", "1", &err));
    EXPECT_FALSE(setGenKnob(spec, "ops", "-3", &err));
}

TEST(GenSpec, FingerprintIsSensitiveToEveryKnob)
{
    const GenSpec base;
    const std::uint64_t fp = base.fingerprint();
    EXPECT_EQ(GenSpec{}.fingerprint(), fp); // stable for equal specs

    for (const std::string &knob : genKnobNames()) {
        GenSpec tweaked = base;
        std::string err;
        // 3 is a valid value for every knob and differs from every
        // default, so each iteration really changes one knob.
        ASSERT_TRUE(setGenKnob(tweaked, knob, "3", &err))
            << knob << ": " << err;
        ASSERT_NE(tweaked, base) << knob;
        EXPECT_NE(tweaked.fingerprint(), fp) << knob;
    }

    GenSpec seeded = base;
    seeded.seed = base.seed + 1;
    EXPECT_NE(seeded.fingerprint(), fp);
}

TEST(GenSpec, BinaryRoundTrip)
{
    GenSpec spec;
    spec.seed = 0xdeadbeefcafef00dull;
    spec.ops = 123;
    spec.tpc = 96;
    spec.div = 55;
    spec.scalar = 40;
    spec.affine = 35;

    const std::vector<std::uint8_t> blob = serializeGenSpec(spec);
    std::string err;
    const std::optional<GenSpec> back = deserializeGenSpec(blob, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);
}

TEST(GenSpec, DeserializeRejectsHostileBytes)
{
    const std::vector<std::uint8_t> blob = serializeGenSpec(GenSpec{});

    // Truncations at every length must fail cleanly, never crash.
    for (std::size_t n = 0; n < blob.size(); ++n) {
        std::string err;
        EXPECT_FALSE(deserializeGenSpec(blob.data(), n, &err).has_value())
            << "truncated to " << n;
    }

    // Any single flipped byte breaks the checksum (or the structure).
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::vector<std::uint8_t> bad = blob;
        bad[i] ^= 0xff;
        std::string err;
        EXPECT_FALSE(deserializeGenSpec(bad, &err).has_value())
            << "flipped byte " << i;
    }
}

TEST(GenSpec, FuzzValueParsersAreStrict)
{
    EXPECT_FALSE(parseCountValue("").has_value());
    EXPECT_FALSE(parseCountValue("0").has_value());
    EXPECT_FALSE(parseCountValue("12x").has_value());
    EXPECT_FALSE(parseCountValue("-1").has_value());
    EXPECT_FALSE(parseCountValue("1000001").has_value());
    EXPECT_EQ(parseCountValue("1").value_or(0), 1u);
    EXPECT_EQ(parseCountValue("1000000").value_or(0), 1'000'000u);

    EXPECT_FALSE(parseSeedValue("").has_value());
    EXPECT_FALSE(parseSeedValue("seed").has_value());
    EXPECT_FALSE(parseSeedValue("1 ").has_value());
    EXPECT_FALSE(parseSeedValue("18446744073709551616").has_value());
    EXPECT_EQ(parseSeedValue("0").value_or(1), 0u);
    EXPECT_EQ(parseSeedValue("18446744073709551615").value_or(0),
              UINT64_MAX);
}
