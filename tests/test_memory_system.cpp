#include <gtest/gtest.h>

#include "sim/memory/memory_system.hpp"

namespace gs
{
namespace
{

std::array<Addr, kMaxWarpSize>
addrArray(std::initializer_list<Addr> v)
{
    std::array<Addr, kMaxWarpSize> a{};
    unsigned i = 0;
    for (const Addr x : v)
        a[i++] = x;
    return a;
}

TEST(Coalescer, SingleLineForContiguousWarp)
{
    std::array<Addr, kMaxWarpSize> a{};
    for (unsigned i = 0; i < 32; ++i)
        a[i] = 0x1000 + i * 4;
    const auto lines = coalesce(a, laneMaskLow(32), 128);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, UniformAddressOneLine)
{
    std::array<Addr, kMaxWarpSize> a{};
    a.fill(0x2004);
    EXPECT_EQ(coalesce(a, laneMaskLow(32), 128).size(), 1u);
}

TEST(Coalescer, StridedWorstCase)
{
    std::array<Addr, kMaxWarpSize> a{};
    for (unsigned i = 0; i < 32; ++i)
        a[i] = i * 512;
    EXPECT_EQ(coalesce(a, laneMaskLow(32), 128).size(), 32u);
}

TEST(Coalescer, InactiveLanesIgnored)
{
    const auto a = addrArray({0x0, 0xdead00, 0x40});
    const auto lines = coalesce(a, 0b101, 128);
    ASSERT_EQ(lines.size(), 1u); // lanes 0 and 2 share line 0
}

TEST(Coalescer, StraddlingBoundary)
{
    const auto a = addrArray({0x7c, 0x80});
    EXPECT_EQ(coalesce(a, 0b11, 128).size(), 2u);
}

class MemSystemTest : public ::testing::Test
{
  protected:
    MemSystemTest() : memsys(cfg) {}
    ArchConfig cfg;
    MemorySystem memsys{cfg};
    EventCounts ev;
};

TEST_F(MemSystemTest, MissThenHitLatency)
{
    const Cycle t1 = memsys.access(0x0, false, 100, ev);
    EXPECT_EQ(ev.l2Accesses, 1u);
    EXPECT_EQ(ev.l2Misses, 1u);
    EXPECT_EQ(ev.dramAccesses, 1u);
    EXPECT_GE(t1, 100u + cfg.l2Latency + cfg.dramLatency);

    const Cycle t2 = memsys.access(0x0, false, 2000, ev);
    EXPECT_EQ(ev.l2Misses, 1u); // now a hit
    EXPECT_EQ(t2, 2000u + 1 + cfg.l2Latency);
}

TEST_F(MemSystemTest, StoreWriteThroughDoesNotWaitForDram)
{
    const Cycle t = memsys.access(0x100000, true, 50, ev);
    EXPECT_EQ(ev.dramAccesses, 1u);
    EXPECT_LE(t, 50u + 1 + cfg.l2Latency);
}

TEST_F(MemSystemTest, ChannelPortSerialises)
{
    // Two simultaneous requests to the same channel serialize on the
    // slice port.
    const Addr line = 0;
    const Addr same_channel =
        Addr(cfg.lineBytes) * cfg.memChannels; // maps to channel 0 too
    const Cycle a = memsys.access(line, false, 10, ev);
    const Cycle b = memsys.access(same_channel, false, 10, ev);
    EXPECT_GT(b, a - cfg.dramLatency); // second starts strictly later
    EXPECT_NE(a, b);
}

TEST_F(MemSystemTest, DifferentChannelsIndependent)
{
    const Cycle a = memsys.access(0, false, 10, ev);
    const Cycle b = memsys.access(cfg.lineBytes, false, 10, ev);
    // Distinct channels: both see cold-miss latency with no queueing.
    EXPECT_EQ(a, b);
}

TEST_F(MemSystemTest, ResetRestoresColdState)
{
    memsys.access(0x0, false, 10, ev);
    memsys.access(0x0, false, 1000, ev);
    EXPECT_EQ(ev.l2Misses, 1u);
    memsys.reset();
    memsys.access(0x0, false, 2000, ev);
    EXPECT_EQ(ev.l2Misses, 2u);
}

} // namespace
} // namespace gs
