/**
 * @file
 * Minimizer and reproducer-artifact tests (gen/minimize.hpp,
 * gen/artifact.hpp, gen/fuzz.hpp): ddmin shrinks a kernel to the
 * instructions the badness predicate actually needs, deterministically;
 * the injected gen:miscompare fault drives the full
 * diff -> minimize -> artifact -> replay loop end to end; and corpus
 * files are treated as hostile input on load.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gen/artifact.hpp"
#include "gen/diff.hpp"
#include "gen/fuzz.hpp"
#include "gen/generator.hpp"
#include "gen/minimize.hpp"
#include "isa/kernel_builder.hpp"

using namespace gs;

namespace
{

/** Kernel with one IMUL buried in filler; the minimization target. */
Kernel
buildHaystack()
{
    KernelBuilder kb("haystack");
    const Reg a = kb.reg();
    kb.movi(a, 1);
    const Reg t = kb.reg();
    for (int i = 0; i < 14; ++i)
        kb.iaddi(t, a, Word(i));
    kb.emit2(Opcode::IMUL, t, a, a); // the needle
    for (int i = 0; i < 13; ++i)
        kb.iaddi(t, a, Word(i));
    return kb.build();
}

bool
containsImul(const Kernel &k)
{
    for (const Instruction &inst : k.code)
        if (inst.op == Opcode::IMUL)
            return true;
    return false;
}

/** Small spec so each diff probe costs milliseconds. */
GenSpec
smallSpec()
{
    GenSpec spec;
    spec.seed = 3;
    spec.ops = 8;
    spec.ctas = 1;
    spec.tpc = 16;
    return spec;
}

std::string
freshDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(GenMinimize, ShrinksToTheInstructionsThePredicateNeeds)
{
    const Kernel haystack = buildHaystack();
    ASSERT_GT(haystack.code.size(), 20u);

    const MinimizeResult r = minimizeKernel(haystack, containsImul);
    // Exactly the needle and the mandatory trailing EXIT survive.
    ASSERT_EQ(r.kernel.code.size(), 2u);
    EXPECT_EQ(r.kernel.code[0].op, Opcode::IMUL);
    EXPECT_EQ(r.kernel.code[1].op, Opcode::EXIT);
    EXPECT_TRUE(r.kernel.check().empty()) << r.kernel.check();
    EXPECT_EQ(r.removed, haystack.code.size() - 2);
    EXPECT_GT(r.probes, 0u);

    // Deterministic: a second run reproduces the same kernel bytes.
    const MinimizeResult again = minimizeKernel(haystack, containsImul);
    EXPECT_EQ(serializeKernel(again.kernel), serializeKernel(r.kernel));
    EXPECT_EQ(again.probes, r.probes);
}

TEST(GenMinimize, ProbeBudgetBoundsTheSearch)
{
    const Kernel haystack = buildHaystack();
    std::uint64_t calls = 0;
    const MinimizeResult r = minimizeKernel(
        haystack,
        [&](const Kernel &k) {
            ++calls;
            return containsImul(k);
        },
        3);
    EXPECT_LE(r.probes, 3u);
    EXPECT_LE(calls, 3u);
    EXPECT_TRUE(containsImul(r.kernel));
}

TEST(GenMinimize, InjectedMiscompareMinimizesToReplayableArtifact)
{
    // Arm the diff-layer fault: every simulated output gets one bit
    // flipped, so every kernel "miscompares" deterministically.
    std::string err;
    ASSERT_TRUE(faultInjector().configure("gen:miscompare:1:7", &err))
        << err;

    const GenSpec spec = smallSpec();
    DiffOptions opt;
    opt.modes = {ArchMode::GScalarFull};
    opt.numSms = 1;

    const Kernel kernel = generateKernel(spec);
    const DiffOutcome out = diffKernel(kernel, spec, opt);
    ASSERT_EQ(out.mismatches.size(), 1u);
    EXPECT_TRUE(out.mismatches.front().injected);

    const DiffMismatch first = out.mismatches.front();
    const MinimizeResult minimized = minimizeKernel(
        kernel,
        [&](const Kernel &candidate) {
            return diffOneMode(candidate, spec, first.mode, opt);
        },
        2000);
    EXPECT_LT(minimized.kernel.code.size(), kernel.code.size());

    DiffMismatch recorded = first;
    ASSERT_TRUE(diffOneMode(minimized.kernel, spec, first.mode, opt,
                            &recorded));

    Reproducer repro;
    repro.spec = spec;
    repro.kernel = minimized.kernel;
    repro.mode = recorded.mode;
    repro.index = recorded.index;
    repro.want = recorded.want;
    repro.got = recorded.got;
    repro.note = "injected gen:miscompare";

    const std::string dir = freshDir("gscalar-minimize-corpus");
    const std::string path = writeReproducer(repro, dir, &err);
    ASSERT_FALSE(path.empty()) << err;
    EXPECT_TRUE(std::filesystem::exists(path));

    // Round trip preserves every recorded field.
    const std::optional<Reproducer> back = loadReproducer(path, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->spec, spec);
    EXPECT_EQ(serializeKernel(back->kernel),
              serializeKernel(minimized.kernel));
    EXPECT_EQ(back->index, recorded.index);

    // With the fault still armed, the artifact replays exactly.
    std::string detail;
    EXPECT_TRUE(replayReproducer(path, opt, &detail)) << detail;
    EXPECT_EQ(detail.rfind("reproduced:", 0), 0u) << detail;

    // Disarmed, the "bug" is gone and replay says so.
    ASSERT_TRUE(faultInjector().configure("", &err)) << err;
    EXPECT_FALSE(replayReproducer(path, opt, &detail));
    EXPECT_EQ(detail.rfind("no miscompare:", 0), 0u) << detail;
}

TEST(GenMinimize, CampaignWritesContentAddressedArtifacts)
{
    std::string err;
    ASSERT_TRUE(faultInjector().configure("gen:miscompare:1:9", &err))
        << err;

    FuzzOptions opt;
    opt.count = 2;
    opt.seed = 5;
    opt.engineTraffic = false;
    opt.jobs = 2;
    opt.knobs = {{"ops", "8"}, {"ctas", "1"}, {"tpc", "16"}};
    opt.diff.modes = {ArchMode::Baseline};
    opt.diff.numSms = 1;
    opt.corpusDir = freshDir("gscalar-campaign-corpus");

    const FuzzCampaignResult result = runFuzzCampaign(opt);
    EXPECT_FALSE(result.clean());
    EXPECT_EQ(result.miscompares, 2u);
    ASSERT_EQ(result.artifacts.size(), 2u);
    ASSERT_EQ(result.reportLines.size(), 2u);
    for (const std::string &line : result.reportLines) {
        EXPECT_EQ(line.rfind("MISCOMPARE kernel ", 0), 0u) << line;
        EXPECT_NE(line.find("; artifact "), std::string::npos) << line;
    }

    // Every artifact replays while the fault is armed.
    for (const std::string &path : result.artifacts) {
        std::string detail;
        EXPECT_TRUE(replayReproducer(path, opt.diff, &detail))
            << path << ": " << detail;
    }

    // Re-running the identical campaign dedupes into the same files.
    const FuzzCampaignResult again = runFuzzCampaign(opt);
    EXPECT_EQ(again.artifacts, result.artifacts);
    EXPECT_EQ(again.reportLines, result.reportLines);

    ASSERT_TRUE(faultInjector().configure("", &err)) << err;
}

TEST(GenMinimize, ArtifactLoaderTreatsFilesAsHostile)
{
    Reproducer repro;
    repro.spec = smallSpec();
    repro.kernel = generateKernel(repro.spec);
    repro.note = "hostility check";
    const std::vector<std::uint8_t> blob = serializeReproducer(repro);

    std::string err;
    const std::optional<Reproducer> ok =
        deserializeReproducer(blob.data(), blob.size(), &err);
    ASSERT_TRUE(ok.has_value()) << err;
    EXPECT_EQ(ok->spec, repro.spec);
    EXPECT_EQ(ok->note, repro.note);

    for (std::size_t n = 0; n < blob.size(); n += 7) {
        std::string why;
        EXPECT_FALSE(
            deserializeReproducer(blob.data(), n, &why).has_value())
            << "truncated to " << n;
    }
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::vector<std::uint8_t> bad = blob;
        bad[i] ^= 0xff;
        std::string why;
        EXPECT_FALSE(deserializeReproducer(bad.data(), bad.size(), &why)
                         .has_value())
            << "flipped byte " << i;
    }

    EXPECT_FALSE(loadReproducer("/nonexistent/corpus/file.gsr", &err)
                     .has_value());
}
