/**
 * @file
 * End-to-end persistent-cache test: two separate CLI processes pointed
 * at the same GS_CACHE_DIR must produce byte-identical stdout, with the
 * second answered from disk (its stderr reports a disk-cache hit). This
 * is the cross-process guarantee the disk cache exists for, so it is
 * exercised through the real binary, not in-process shims.
 *
 * The CLI path is injected by CMake as GS_CLI_PATH.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace
{

struct TempDir
{
    std::string path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gscli-XXXXXX").string();
        char *p = ::mkdtemp(tmpl.data());
        EXPECT_NE(p, nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Run `GS_CACHE_DIR=<cacheDir> gscalar <args>`, capturing stdout and
 *  stderr into files; returns the exit status. */
int
runCli(const std::string &cacheDir, const std::string &args,
       const std::string &outFile, const std::string &errFile)
{
    const std::string cmd = "GS_CACHE_DIR='" + cacheDir + "' '" +
                            GS_CLI_PATH "' " + args + " > '" + outFile +
                            "' 2> '" + errFile + "'";
    return std::system(cmd.c_str());
}

} // namespace

TEST(PersistentCache, SecondProcessHitsDiskWithIdenticalStdout)
{
    TempDir tmp;
    const std::string cache = tmp.path + "/cache";
    const std::string out1 = tmp.path + "/out1";
    const std::string out2 = tmp.path + "/out2";
    const std::string err1 = tmp.path + "/err1";
    const std::string err2 = tmp.path + "/err2";

    // BT is the quickest benchmark; --power widens the checked surface.
    const std::string args = "run BT --mode gscalar --power";
    ASSERT_EQ(runCli(cache, args, out1, err1), 0) << slurp(err1);
    ASSERT_EQ(runCli(cache, args, out2, err2), 0) << slurp(err2);

    const std::string o1 = slurp(out1), o2 = slurp(out2);
    ASSERT_FALSE(o1.empty());
    EXPECT_EQ(o1, o2) << "stdout differed between cold and cached run";

    // First process simulated and stored; second answered from disk.
    EXPECT_NE(slurp(err1).find("disk cache: 0 hits, 1 stores"),
              std::string::npos)
        << slurp(err1);
    EXPECT_NE(slurp(err2).find("disk cache: 1 hits, 0 stores"),
              std::string::npos)
        << slurp(err2);
}

TEST(PersistentCache, MalformedJobsValuesAreRejected)
{
    TempDir tmp;
    const std::string out = tmp.path + "/out";
    const std::string err = tmp.path + "/err";

    // Bad --jobs and bad GS_JOBS must abort with a clear message, not
    // silently fall back to a default pool size.
    // parseFlags aborts before any simulation starts.
    EXPECT_NE(runCli("", "run BT --jobs nope", out, err), 0);
    EXPECT_NE(runCli("", "run BT -j 0", out, err), 0);
    for (const char *bad : {"0", "-3", "1x", "", "99999"}) {
        const std::string cmd = std::string("GS_JOBS='") + bad +
                                "' '" GS_CLI_PATH "' list > '" + out +
                                "' 2> '" + err + "'";
        EXPECT_NE(std::system(cmd.c_str()), 0)
            << "GS_JOBS='" << bad << "' accepted";
        EXPECT_NE(slurp(err).find("GS_JOBS"), std::string::npos);
    }
    // A well-formed value still works.
    const std::string ok = std::string("GS_JOBS=2 '") + GS_CLI_PATH +
                           "' list > '" + out + "' 2> '" + err + "'";
    EXPECT_EQ(std::system(ok.c_str()), 0);
}

TEST(PersistentCache, VersionAndHelpExitZero)
{
    TempDir tmp;
    const std::string out = tmp.path + "/out";
    const std::string err = tmp.path + "/err";
    ASSERT_EQ(runCli("", "--version", out, err), 0);
    EXPECT_NE(slurp(out).find("gscalar "), std::string::npos);
    ASSERT_EQ(runCli("", "--help", out, err), 0);
    const std::string help = slurp(out);
    EXPECT_NE(help.find("usage:"), std::string::npos);
    // Every registered command appears in the global usage listing —
    // registering a command without surfacing it is a help-rot bug.
    for (const char *cmd :
         {"run", "suite", "bench", "disasm", "trace", "experiment",
          "serve", "submit", "fuzz", "sweep", "config", "list"}) {
        EXPECT_NE(help.find(std::string("\n  ") + cmd),
                  std::string::npos)
            << "command '" << cmd << "' missing from --help";
        // ...and each one answers a per-command --help.
        ASSERT_EQ(runCli("", std::string(cmd) + " --help", out, err), 0)
            << cmd;
        EXPECT_NE(slurp(out).find(std::string("usage: gscalar ") + cmd),
                  std::string::npos)
            << cmd;
    }
    EXPECT_NE(runCli("", "nonsense --help", out, err), 0);
    // The sweep help documents its crash-recovery contract.
    ASSERT_EQ(runCli("", "sweep --help", out, err), 0);
    EXPECT_NE(slurp(out).find("--resume"), std::string::npos);
    // No subcommand at all stays a usage error.
    EXPECT_NE(runCli("", "", out, err), 0);
}
